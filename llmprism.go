// Package llmprism is a black-box performance diagnosis library for LLM
// training platforms, reproducing the LLMPrism system (DSN 2025).
//
// From switch-level network flow records alone — no tenant cooperation, no
// code instrumentation — it progressively:
//
//  1. recognizes the individual training jobs running on the platform,
//  2. identifies each job's parallelism strategy (which endpoint pairs are
//     pipeline-parallel and which are data-parallel),
//  3. reconstructs per-GPU training timelines with step boundaries, and
//  4. diagnoses performance degradations (slow steps, slow DP groups,
//     congested or degraded switches).
//
// The package also exposes a full platform simulator (Simulate) that stands
// in for a production multi-tenant GPU cluster: topology, 3D-parallel
// training jobs, a fluid network model, ERSPAN-style flow collection, and
// fault injection — everything needed to reproduce the paper's evaluation
// end to end.
//
// # Quick start
//
//	res, err := llmprism.Simulate(scenario)       // or load real flows
//	report, err := llmprism.New().Analyze(res.Records, res.Topo)
//	for _, job := range report.Jobs { ... }
//
// # Concurrency and data layout
//
// Analysis runs over an immutable columnar flow.Frame: the window's records
// are loaded once into struct-of-arrays columns with switch paths interned
// into a shared table, sorted by (endpoint pair, start, id). Analyze and
// AnalyzeContext build the frame from a record slice as thin adapters;
// AnalyzeFrame accepts an already-built frame (NewFlowFrame, or the
// collector's own builder).
//
// After job recognition — a DSU pass over the frame's pair index — each
// recognized job's identify → timeline → diagnose chain is independent, so
// the pipeline hands each worker a zero-copy view of its job's rows and
// fans jobs out to a worker pool sized by WithWorkers (default GOMAXPROCS),
// merging the per-job results back in deterministic smallest-endpoint
// order; the switch-level series is assembled from per-job partial
// aggregations merged in that same order. The report is therefore
// bit-identical for any worker count — and for the frame-free record-slice
// pipeline — including the sequential WithWorkers(1) form. The
// cmd/llmprism and cmd/repro CLIs expose the knob as -workers.
//
// # Streaming monitor
//
// Monitor runs the pipeline continuously, the paper's deployment mode.
// Records are windowed on an event-time grid (width, hop, allowed
// lateness — see WithHop and WithLateness); a window closes when the
// watermark (newest record start minus lateness) passes its end, and
// empty completed windows still yield bounds-carrying reports so window
// sequence numbers line up with wall clock. Two ingestion paths exist:
// the synchronous Feed loop (batch-sorts and merges into one buffer, one
// frame per completed window), and Monitor.Stream, whose per-window
// columnar builders ingest records incrementally — including out-of-order
// arrivals within the lateness bound — and whose closed windows analyze
// asynchronously (WithPipelineDepth) while newer records keep ingesting.
// Reports are released strictly in window order and are bit-identical to
// the Feed loop's for the same in-order stream; records later than the
// lateness bound are dropped and counted rather than misfiled. Across
// windows, a job registry stamps stable JobIDs by endpoint-set matching,
// change-point detectors are reused via Reset instead of rebuilt, and
// Report.Incidents tracks each anomaly's first-seen/still-firing state so
// a persistent fault is one ongoing incident, not one alert pile per
// window. WithChronicSuppression goes further: anomalies firing since the
// monitor's first windows that never resolve are classified chronic and
// suppressed from the alert surface and localization evidence, and with
// localization enabled Report.FusedSuspects accumulates each suspect
// component's score across windows so one persistent root cause outranks
// per-window noise. The cmd/llmprism CLI exposes this as the monitor
// subcommand (-window, -hop, -lateness, -localize, -suppress-chronic).
package llmprism

import (
	"context"
	"fmt"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/pool"
)

// Config collects the tuning knobs of all four analysis phases.
type Config struct {
	Recognition jobrec.Config
	Parallel    parallel.Config
	Timeline    timeline.Config
	Diagnosis   diagnose.Config
	// Localize enables root-cause localization: after diagnosis, the
	// window's alerts plus the flows' switch paths are converted into the
	// ranked Report.Suspects list. Localization runs once on the merged
	// report, so it adds no per-worker state.
	Localize bool
	// Localization tunes the localizer (zero value = defaults).
	Localization localize.Config
	// Workers bounds the per-job fan-out of the analysis pipeline. Zero or
	// negative means GOMAXPROCS; 1 runs the pipeline sequentially.
	Workers int
}

// Option customizes an Analyzer.
type Option func(*Config)

// WithoutRefinement disables the DP transitive-closure refinement — the
// "LLMPrism w/o refinement" baseline of the paper's Table I.
func WithoutRefinement() Option {
	return func(c *Config) { c.Parallel.DisableRefinement = true }
}

// WithSigmaK sets the k of the k-sigma anomaly rule (default 3).
func WithSigmaK(k float64) Option {
	return func(c *Config) { c.Diagnosis.K = k }
}

// WithSwitchBucket sets the switch-level aggregation bucket width.
func WithSwitchBucket(d time.Duration) Option {
	return func(c *Config) { c.Diagnosis.Bucket = d }
}

// WithMaxConcurrentDPFlows enables the per-switch concurrent DP flow limit
// check.
func WithMaxConcurrentDPFlows(n int) Option {
	return func(c *Config) { c.Diagnosis.MaxConcurrentDPFlows = n }
}

// WithLossTolerantDiagnosis hardens the per-step detectors against
// collector record loss: DP-group durations aggregate member medians
// instead of means (a lost boundary record doubles one member's apparent
// step, and the mean inherits the artifact), and a rank or group must stay
// anomalous for at least persist steps within a window before its alerts
// surface. Real faults hold for the window; loss corrupts isolated steps.
// persist <= 1 keeps only the median hardening.
func WithLossTolerantDiagnosis(persist int) Option {
	return func(c *Config) {
		c.Diagnosis.GroupMedian = true
		c.Diagnosis.MinPersist = persist
	}
}

// WithSwitchTiers stratifies the switch-bandwidth peer comparison by the
// given tier classifier (e.g. leaf vs spine): switches are judged only
// against peers of their own tier, because the tiers carry structurally
// different per-flow bandwidth. The default compares all switches in one
// population.
func WithSwitchTiers(tier func(SwitchID) int) Option {
	return func(c *Config) { c.Diagnosis.SwitchTier = tier }
}

// WithGroupRails stratifies the cross-group peer comparison by the given
// rail classifier over DP-group anchor endpoints, the group-side mirror of
// WithSwitchTiers: groups are judged only against peers of their own rail
// class, because rails carry structurally different collective-segment
// durations (the trailing rail absorbs the collective's serialization tail
// every step, and pooling makes its groups fire chronic false alerts). The
// default compares all of a job's groups in one population.
func WithGroupRails(rail func(Addr) int) Option {
	return func(c *Config) { c.Diagnosis.GroupRail = rail }
}

// WithLocalization enables root-cause localization: every report gains a
// ranked Suspects list naming the switches, inter-switch links and host
// NICs most likely behind the window's alerts. cfg tunes the localizer;
// the zero value uses the documented defaults.
func WithLocalization(cfg LocalizationConfig) Option {
	return func(c *Config) {
		c.Localize = true
		c.Localization = cfg
	}
}

// WithWorkers bounds the per-job fan-out of the analysis pipeline. Zero or
// negative means GOMAXPROCS (the default); 1 disables concurrency. The
// report is bit-identical for every worker count.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithConfig replaces the entire configuration.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// Analyzer runs the four-phase pipeline. Construct with New.
type Analyzer struct {
	cfg Config
}

// New returns an Analyzer with the given options applied over defaults.
func New(opts ...Option) *Analyzer {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Analyzer{cfg: cfg}
}

// JobReport is the analysis of one recognized training job.
type JobReport struct {
	// JobID is the stable cross-window identity the monitor's job registry
	// assigned by matching this window's endpoint set against previous
	// windows. It is 0 on reports produced outside the monitor.
	JobID jobrec.JobID
	// Cluster is the recognized job: endpoints and servers.
	Cluster jobrec.Cluster
	// Records are the job's flow records (sorted by start time). They are
	// materialized from the analysis frame: timestamps are normalized to
	// UTC, empty switch paths are nil, and the Switches slices alias the
	// window's shared interned path table — treat them as read-only.
	Records []flow.Record
	// Types classifies each communicating pair as PP or DP.
	Types map[flow.Pair]parallel.Type
	// DPGroups are the job's data-parallel groups (one per pipeline
	// stage and NIC rail).
	DPGroups [][]flow.Addr
	// StepsPerPair is a per-pair diagnostic from identification.
	StepsPerPair map[flow.Pair]int
	// Timelines maps each rank to its reconstructed timeline.
	Timelines map[flow.Addr]*timeline.Timeline
	// Alerts holds the job-scoped diagnosis results (cross-step and
	// cross-group).
	Alerts []diagnose.Alert
}

// Report is the full analysis of one flow window.
type Report struct {
	// Window locates the report on the monitor's window grid; it is the
	// zero value on reports produced by Analyze/AnalyzeFrame directly. A
	// completed window that held no records still yields a report — empty
	// but for these bounds — so window sequence numbers stay aligned with
	// wall-clock windows.
	Window WindowInfo
	// Jobs holds per-job analyses, ordered by smallest endpoint.
	Jobs []JobReport
	// SwitchSeries aggregates per-switch DP bandwidth/flow-count series
	// across all jobs (the paper's Fig. 5 view).
	SwitchSeries map[flow.SwitchID][]diagnose.SwitchPoint
	// SwitchAlerts holds switch-level diagnosis results.
	SwitchAlerts []diagnose.Alert
	// Incidents is the monitor's cross-window continuity view of this
	// window's alerts: one entry per ongoing anomaly (with first-seen time
	// and windows-firing count) plus one final entry for each anomaly that
	// just stopped firing. Nil outside the monitor.
	Incidents []diagnose.Incident
	// Suspects is the ranked root-cause localization of this window's
	// alerts — switches, inter-switch links and host NICs scored by
	// spectrum suspiciousness over alert-implicated vs healthy flows. Nil
	// unless the analyzer was built WithLocalization, or when no alert
	// fired. Inside the monitor each suspect also carries FirstSeen /
	// Windows / Fused continuity keyed on the component's physical
	// identity.
	Suspects []localize.Suspect
	// FusedSuspects is the monitor's incident-centric suspect view: the
	// cross-window fused ranking (per-component suspiciousness summed over
	// the windows of its run, one-window flaps tolerated) ordered by fused
	// score. Where Suspects answers "what does this window point at",
	// FusedSuspects answers "what does the incident so far point at" —
	// brief noise washes out, concurrent faults separate. Nil outside the
	// monitor or without WithLocalization.
	FusedSuspects []localize.Suspect
	// Coverage is the monitor's per-window collection-coverage signal,
	// stamped when the monitor runs WithCoverageGuard: the window's
	// observed flow volume against the rolling baseline of recent healthy
	// windows. On a degraded window (coverage collapsed — a collector
	// outage, a mirror blackout) the monitor withholds the window's alerts
	// and freezes the continuity trackers instead of letting thinned
	// evidence fire false diagnoses; Degraded says so. The zero value
	// means no coverage guard ran.
	Coverage Coverage
}

// Alerts returns every alert in the report (job-scoped then switch-level),
// nil when there are none.
func (r *Report) Alerts() []diagnose.Alert {
	n := len(r.SwitchAlerts)
	for _, j := range r.Jobs {
		n += len(j.Alerts)
	}
	if n == 0 {
		return nil
	}
	out := make([]diagnose.Alert, 0, n)
	for _, j := range r.Jobs {
		out = append(out, j.Alerts...)
	}
	return append(out, r.SwitchAlerts...)
}

// Analyze runs the full pipeline over one window of flow records. mapper
// resolves endpoints to servers (a *topology.Topology satisfies it).
// records need not be sorted; they are not modified (the window is loaded
// into a columnar frame, and the report's JobReport.Records are
// re-materialized from it rather than aliased from the input — see the
// field's doc for the normalization that implies). Analyze is
// AnalyzeContext with a background context.
func (a *Analyzer) Analyze(records []flow.Record, mapper jobrec.ServerMapper) (*Report, error) {
	return a.AnalyzeContext(context.Background(), records, mapper)
}

// AnalyzeFrame runs the full pipeline over an already-built columnar frame.
// It is AnalyzeFrameContext with a background context.
func (a *Analyzer) AnalyzeFrame(f *flow.Frame, mapper jobrec.ServerMapper) (*Report, error) {
	return a.AnalyzeFrameContext(context.Background(), f, mapper)
}

// jobAnalysis is one worker's output: the job's report plus its private
// partial switch aggregation, merged later in job order.
type jobAnalysis struct {
	report JobReport
	series *diagnose.SeriesAccum
}

// AnalyzeContext runs the full pipeline over one window of flow records.
// It is a thin adapter over AnalyzeFrameContext: the window is loaded once
// into a columnar flow.Frame (which also establishes the canonical sort
// order, so no separate sorted copy is made) and analyzed from there. The
// frame build runs at the analyzer's worker count — byte-identical to the
// serial build for every count — so the sort is not a serial prefix on the
// multi-worker critical path. The report is bit-identical to analyzing the
// records directly with the classic record-slice pipeline.
func (a *Analyzer) AnalyzeContext(ctx context.Context, records []flow.Record, mapper jobrec.ServerMapper) (*Report, error) {
	return a.AnalyzeFrameContext(ctx, flow.NewFrameParallel(records, a.cfg.Workers), mapper)
}

// AnalyzeFrameContext runs the full pipeline over one columnar frame,
// fanning the per-job identify → timeline → diagnose chains out to a
// worker pool of Config.Workers goroutines (default GOMAXPROCS). Each
// worker receives a zero-copy view of its job's rows (pair spans plus a
// start-ordered row permutation) rather than a filtered record slice. Job
// reports are merged back in smallest-endpoint order and the switch-level
// series is built from per-job partial aggregations merged in that same
// order, so the report is bit-identical for every worker count. ctx
// cancellation aborts between pipeline phases and returns ctx.Err().
func (a *Analyzer) AnalyzeFrameContext(ctx context.Context, f *flow.Frame, mapper jobrec.ServerMapper) (*Report, error) {
	if f == nil || f.Len() == 0 {
		return nil, fmt.Errorf("llmprism: no flow records to analyze")
	}
	if mapper == nil {
		return nil, fmt.Errorf("llmprism: nil server mapper")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Recognition is a single cheap DSU pass over the pair index; the
	// expensive phases below are per-job and embarrassingly parallel.
	clusters := jobrec.RecognizeFrame(f, mapper, a.cfg.Recognition)
	views := jobrec.SelectJobs(f, clusters)

	analyses, err := pool.Map(ctx, a.cfg.Workers, clusters,
		func(ctx context.Context, i int, cluster jobrec.Cluster) (jobAnalysis, error) {
			v := views[i]
			cls := parallel.IdentifyView(v, a.cfg.Parallel)
			if err := ctx.Err(); err != nil {
				return jobAnalysis{}, err
			}
			tls := timeline.ReconstructView(v, cls.Types, a.cfg.Timeline)
			if err := ctx.Err(); err != nil {
				return jobAnalysis{}, err
			}
			var alerts []diagnose.Alert
			alerts = append(alerts, diagnose.CrossStep(tls, a.cfg.Diagnosis)...)
			alerts = append(alerts, diagnose.CrossGroup(tls, cls.DPGroups, a.cfg.Diagnosis)...)

			series := diagnose.NewSeriesAccum(a.cfg.Diagnosis)
			series.AddView(v, cls.Types)
			return jobAnalysis{
				report: JobReport{
					Cluster:      cluster,
					Records:      v.Records(),
					Types:        cls.Types,
					DPGroups:     cls.DPGroups,
					StepsPerPair: cls.StepsPerPair,
					Timelines:    tls,
					Alerts:       alerts,
				},
				series: series,
			}, nil
		})
	if err != nil {
		return nil, err
	}

	// Merge in cluster order — Recognize sorts clusters by smallest
	// endpoint, which both orders Report.Jobs and fixes the float
	// summation order of the switch series.
	report := &Report{}
	merged := diagnose.NewSeriesAccum(a.cfg.Diagnosis)
	for _, ja := range analyses {
		report.Jobs = append(report.Jobs, ja.report)
		merged.Merge(ja.series)
	}
	report.SwitchSeries = merged.Series()
	report.SwitchAlerts = diagnose.SwitchDiagnose(report.SwitchSeries, a.cfg.Diagnosis)
	if a.cfg.Localize {
		report.Suspects = localizeReport(report, a.cfg.Localization)
	}
	return report, nil
}

// localizeReport runs root-cause localization over the merged report. It
// executes on the in-order merge path (never inside the per-job fan-out),
// visiting jobs in report order, which is what keeps the suspect list
// bit-identical for every worker count. Job IDs are forwarded for the
// evidence filter; they are zero outside the monitor's annotate path.
func localizeReport(r *Report, cfg localize.Config) []localize.Suspect {
	jobs := make([]localize.Job, len(r.Jobs))
	for i, jr := range r.Jobs {
		jobs[i] = localize.Job{
			ID:       int(jr.JobID),
			Records:  jr.Records,
			Types:    jr.Types,
			DPGroups: jr.DPGroups,
			Alerts:   jr.Alerts,
		}
	}
	return localize.Localize(jobs, r.SwitchAlerts, cfg)
}
