package llmprism

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/truth"
)

// simulateSmallPlatform runs a 3-job platform for the given horizon.
func simulateSmallPlatform(t testing.TB, horizon time.Duration, sched faults.Schedule) *SimResult {
	t.Helper()
	topoSpec := TopologySpec{Nodes: 24, NodesPerLeaf: 8, Spines: 4}
	jobs, err := PlanJobs(topoSpec, []JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 3 * time.Second},
		{Nodes: 4, TargetStep: 2 * time.Second},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Scenario{
		Name:    "integration",
		Topo:    topoSpec,
		Jobs:    jobs,
		Faults:  sched,
		Horizon: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	res := simulateSmallPlatform(t, 30*time.Second, faults.Schedule{})
	report, err := New().Analyze(res.Records, res.Topo)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: every job recognized exactly.
	var clusters [][]flow.Addr
	for _, j := range report.Jobs {
		clusters = append(clusters, j.Cluster.Endpoints)
	}
	rec := truth.ScoreRecognition(clusters, res.Truth.Jobs)
	if !rec.Perfect() {
		t.Errorf("recognition not perfect: %+v", rec)
	}

	// Phase 2: pair classification 100%.
	for _, j := range report.Jobs {
		tj := res.Truth.JobOf(j.Cluster.Endpoints[0])
		if tj == nil {
			t.Fatalf("no truth job for cluster starting at %v", j.Cluster.Endpoints[0])
		}
		pred := make(map[flow.Pair]truth.PairType, len(j.Types))
		for p, ty := range j.Types {
			if ty == parallel.TypeDP {
				pred[p] = truth.PairDP
			} else {
				pred[p] = truth.PairPP
			}
		}
		score := truth.ScorePairs(pred, *tj)
		if score.Total == 0 {
			t.Errorf("job %d: no pairs evaluated", tj.ID)
		}
		if acc := score.Accuracy(); acc < 1 {
			t.Errorf("job %d: pair accuracy %.4f (%d/%d), want 1.0",
				tj.ID, acc, score.Correct, score.Total)
		}
	}

	// Phase 3: timeline reconstruction error. The irreducible error is the
	// network-invisible step tail (12ms post-step for ZeRO jobs, +25ms
	// optimizer for all-reduce jobs); with the 2-3s steps of this compact
	// scenario that is up to ~1.3% relative. The paper-scale experiment
	// (10s+ steps) asserts the paper's 0.3% bound in bench_test.go.
	for _, j := range report.Jobs {
		tj := res.Truth.JobOf(j.Cluster.Endpoints[0])
		ends := timeline.AllStepEnds(j.Timelines, res.Truth.Epoch)
		score := truth.ScoreTimeline(ends, *tj)
		if score.MatchedSteps == 0 {
			t.Errorf("job %d: no steps matched", tj.ID)
			continue
		}
		if score.MeanRelError > 0.015 {
			t.Errorf("job %d: mean reconstruction error %.4f%%, want <= 1.5%%",
				tj.ID, 100*score.MeanRelError)
		}
	}

	// Phase 4: a healthy platform should raise few or no alerts.
	if alerts := report.Alerts(); len(alerts) > 10 {
		t.Errorf("healthy platform raised %d alerts", len(alerts))
	}
}

func TestEndToEndStragglerDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Slow down one GPU of job 1 (nodes 0..7) mid-run.
	victim := flow.Addr(3) // node 0, gpu 3
	sched := faults.Schedule{Faults: []faults.Fault{{
		Kind: faults.KindRankSlowdown, Addr: victim,
		At: 15 * time.Second, Until: 30 * time.Second, Factor: 4,
	}}}
	res := simulateSmallPlatform(t, 40*time.Second, sched)
	report, err := New().Analyze(res.Records, res.Topo)
	if err != nil {
		t.Fatal(err)
	}
	var crossStep int
	for _, a := range report.Alerts() {
		if a.Kind == AlertCrossStep {
			crossStep++
		}
	}
	if crossStep == 0 {
		t.Error("straggler injected but no cross-step alerts raised")
	}
}

func TestEndToEndSwitchDegradationDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// 3 nodes per leaf so every 4-node pipeline stage (= DP group) spans
	// two leaves: DP collectives then traverse the spine layer, which is
	// what the switch-level diagnosis observes.
	topoSpec := TopologySpec{Nodes: 24, NodesPerLeaf: 3, Spines: 4}
	topo, err := topology.New(topoSpec)
	if err != nil {
		t.Fatal(err)
	}
	badSpine := topo.SpineSwitch(1)
	sched := faults.Schedule{Faults: []faults.Fault{{
		Kind: faults.KindSwitchDegrade, Switch: badSpine,
		At: 20 * time.Second, Until: 60 * time.Second, Factor: 0.15,
	}}}
	jobs, err := PlanJobs(topoSpec, []JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Scenario{
		Name: "switch-fault", Topo: topoSpec, Jobs: jobs,
		Faults: sched, Horizon: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := New(WithSwitchBucket(10*time.Second)).Analyze(res.Records, res.Topo)
	if err != nil {
		t.Fatal(err)
	}
	foundBad := false
	for _, a := range report.SwitchAlerts {
		if a.Kind == AlertSwitchBandwidth && a.Switch == badSpine {
			foundBad = true
		}
	}
	if !foundBad {
		t.Errorf("degraded spine %v not flagged; alerts: %d", badSpine, len(report.SwitchAlerts))
		for _, a := range report.SwitchAlerts {
			t.Logf("alert: %+v", a)
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	a := New()
	if _, err := a.Analyze(nil, nil); err == nil {
		t.Error("empty records should fail")
	}
	topo, err := topology.New(TopologySpec{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze([]flow.Record{{Src: 1, Dst: 2}}, nil); err == nil {
		t.Error("nil mapper should fail")
	}
	if _, err := a.Analyze([]flow.Record{{Src: 1, Dst: 2, Bytes: 10}}, topo); err != nil {
		t.Errorf("minimal analyze failed: %v", err)
	}
}

func TestSimulateToCSVRoundTripAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	res := simulateSmallPlatform(t, 15*time.Second, faults.Schedule{})
	report1, err := New().Analyze(res.Records, res.Topo)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the records through platform.Result's own window and the
	// analyzer: a sub-window must still recognize all three jobs.
	win := res.Window(5*time.Second, 8*time.Second)
	report2, err := New().Analyze(win, res.Topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(report2.Jobs) != len(report1.Jobs) {
		t.Errorf("window analysis found %d jobs, full found %d", len(report2.Jobs), len(report1.Jobs))
	}
}
