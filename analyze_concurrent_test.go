package llmprism

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/flow"
)

// concurrencyTrace simulates a three-job window once per test binary; the
// determinism tests below re-analyze it at several worker counts.
var (
	concOnce    sync.Once
	concRecords []FlowRecord
	concTopo    *Topology
	concErr     error
)

func concurrencyTrace(t testing.TB) ([]FlowRecord, *Topology) {
	t.Helper()
	concOnce.Do(func() {
		topoSpec := TopologySpec{Nodes: 24, NodesPerLeaf: 8, Spines: 4}
		jobs, err := PlanJobs(topoSpec, []JobPlan{
			{Nodes: 8, TargetStep: 2 * time.Second},
			{Nodes: 8, TargetStep: 3 * time.Second},
			{Nodes: 4, TargetStep: 2 * time.Second},
		}, 23)
		if err != nil {
			concErr = err
			return
		}
		res, err := Simulate(Scenario{
			Name: "concurrency", Topo: topoSpec, Jobs: jobs, Horizon: 20 * time.Second,
		})
		if err != nil {
			concErr = err
			return
		}
		concRecords = res.Records
		concTopo = res.Topo
	})
	if concErr != nil {
		t.Fatal(concErr)
	}
	return concRecords, concTopo
}

// faultedTrace simulates a multi-tenant window with a degraded spine once
// per test binary; the localization determinism tests re-analyze it at
// several worker counts.
var (
	faultOnce    sync.Once
	faultRecords []FlowRecord
	faultTopo    *Topology
	faultSpine   SwitchID
	faultErr     error
)

func faultedTrace(t testing.TB) ([]FlowRecord, *Topology, SwitchID) {
	t.Helper()
	faultOnce.Do(func() {
		topoSpec := TopologySpec{Nodes: 24, NodesPerLeaf: 3, Spines: 4}
		topo, err := NewTopology(topoSpec)
		if err != nil {
			faultErr = err
			return
		}
		faultSpine = topo.SpineSwitch(1)
		jobs, err := PlanJobs(topoSpec, []JobPlan{
			{Nodes: 8, TargetStep: 2 * time.Second},
			{Nodes: 8, TargetStep: 2 * time.Second},
			{Nodes: 8, TargetStep: 2 * time.Second},
		}, 13)
		if err != nil {
			faultErr = err
			return
		}
		res, err := Simulate(Scenario{
			Name: "faulted", Topo: topoSpec, Jobs: jobs,
			Faults: FaultSchedule{Faults: []Fault{{
				Kind: FaultSwitchDegrade, Switch: faultSpine,
				At: 10 * time.Second, Until: 40 * time.Second, Factor: 0.1,
			}}},
			Horizon: 40 * time.Second,
		})
		if err != nil {
			faultErr = err
			return
		}
		faultRecords = res.Records
		faultTopo = res.Topo
	})
	if faultErr != nil {
		t.Fatal(faultErr)
	}
	return faultRecords, faultTopo, faultSpine
}

// TestLocalizationDeterministicAcrossWorkers: the ranked suspect list of a
// degraded-spine window must be bit-identical for every analysis worker
// count — localization folds its evidence on the in-order merge path, not
// inside the fan-out. Run with -race.
func TestLocalizationDeterministicAcrossWorkers(t *testing.T) {
	records, topo, spine := faultedTrace(t)
	analyze := func(workers int) *Report {
		report, err := New(
			WithWorkers(workers),
			WithSwitchBucket(5*time.Second),
			WithLocalization(LocalizationConfig{}),
		).Analyze(records, topo)
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	want := analyze(1)
	if len(want.Suspects) == 0 {
		t.Fatal("degraded-spine window produced no suspects")
	}
	if top := want.Suspects[0].Component; top != (SuspectComponent{Kind: ComponentSwitch, Switch: spine}) {
		t.Errorf("top suspect = %v, want the degraded spine %v", top, spine)
	}
	for _, workers := range []int{2, 8} {
		got := analyze(workers)
		if !reflect.DeepEqual(want.Suspects, got.Suspects) {
			t.Errorf("workers=%d: suspects diverge from sequential run\nwant %+v\ngot  %+v",
				workers, want.Suspects, got.Suspects)
		}
	}
}

// TestAnalyzeContextMatchesSequential is the pipeline's determinism
// guarantee: the concurrent analysis of a multi-job window must be
// deep-equal — including float-typed alert values and switch series — to
// the sequential WithWorkers(1) pipeline's. Run with -race to also verify
// the fan-out is data-race-free.
func TestAnalyzeContextMatchesSequential(t *testing.T) {
	records, topo := concurrencyTrace(t)
	seq, err := New(WithWorkers(1)).Analyze(records, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 (need a multi-job window to exercise the pool)", len(seq.Jobs))
	}
	for _, workers := range []int{2, 8} {
		par, err := New(WithWorkers(workers)).AnalyzeContext(context.Background(), records, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: report diverges from sequential pipeline", workers)
		}
	}
}

// analyzeRecordsSequential is the classic record-slice pipeline, kept as
// the reference implementation the columnar frame path must match
// bit-for-bit: sort a copy, recognize, split per-job record slices, then
// run identify → timeline → diagnose sequentially over them.
func analyzeRecordsSequential(cfg Config, records []FlowRecord, mapper jobrec.ServerMapper) *Report {
	sorted := make([]flow.Record, len(records))
	copy(sorted, records)
	flow.SortByStart(sorted)

	clusters := jobrec.Recognize(sorted, mapper, cfg.Recognition)
	perJob := jobrec.SplitRecords(sorted, clusters)

	report := &Report{}
	merged := diagnose.NewSeriesAccum(cfg.Diagnosis)
	for i, cluster := range clusters {
		jobRecs := perJob[i]
		cls := parallel.Identify(jobRecs, cfg.Parallel)
		tls := timeline.Reconstruct(jobRecs, cls.Types, cfg.Timeline)
		var alerts []diagnose.Alert
		alerts = append(alerts, diagnose.CrossStep(tls, cfg.Diagnosis)...)
		alerts = append(alerts, diagnose.CrossGroup(tls, cls.DPGroups, cfg.Diagnosis)...)
		series := diagnose.NewSeriesAccum(cfg.Diagnosis)
		series.Add(jobRecs, cls.Types)
		merged.Merge(series)
		report.Jobs = append(report.Jobs, JobReport{
			Cluster:      cluster,
			Records:      jobRecs,
			Types:        cls.Types,
			DPGroups:     cls.DPGroups,
			StepsPerPair: cls.StepsPerPair,
			Timelines:    tls,
			Alerts:       alerts,
		})
	}
	report.SwitchSeries = merged.Series()
	report.SwitchAlerts = diagnose.SwitchDiagnose(report.SwitchSeries, cfg.Diagnosis)
	return report
}

// TestAnalyzeFrameMatchesRecordSlice is the acceptance gate of the
// columnar store: the frame-based pipeline — sequential and concurrent —
// must be deep-equal to the record-slice reference pipeline, including
// float-typed alert values, per-switch series (float summation order), and
// the materialized JobReport.Records. Run with -race to also verify the
// shared frame is safe to read from every worker.
func TestAnalyzeFrameMatchesRecordSlice(t *testing.T) {
	records, topo := concurrencyTrace(t)
	want := analyzeRecordsSequential(Config{}, records, topo)
	if len(want.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(want.Jobs))
	}
	frame := NewFlowFrame(records)
	for _, workers := range []int{1, 2, 8} {
		got, err := New(WithWorkers(workers)).AnalyzeFrameContext(context.Background(), frame, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: frame report diverges from record-slice reference", workers)
		}
	}
	// The record-slice entry point is an adapter over the same frame path.
	got, err := New().Analyze(records, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("Analyze adapter diverges from record-slice reference")
	}
}

// TestAnalyzeJobOrderDeterministic pins the merge order contract: jobs are
// reported by smallest endpoint regardless of which worker finishes first.
func TestAnalyzeJobOrderDeterministic(t *testing.T) {
	records, topo := concurrencyTrace(t)
	report, err := New(WithWorkers(8)).AnalyzeContext(context.Background(), records, topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(report.Jobs); i++ {
		prev := report.Jobs[i-1].Cluster.Endpoints[0]
		cur := report.Jobs[i].Cluster.Endpoints[0]
		if cur <= prev {
			t.Errorf("job %d smallest endpoint %v not after job %d's %v", i, cur, i-1, prev)
		}
	}
}

func TestAnalyzeContextCanceled(t *testing.T) {
	records, topo := concurrencyTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := New(WithWorkers(workers)).AnalyzeContext(ctx, records, topo)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMonitorFeedContextMatchesFeed(t *testing.T) {
	records, topo := concurrencyTrace(t)

	feedAll := func(m *Monitor) []*Report {
		t.Helper()
		var reports []*Report
		got, err := m.FeedContext(context.Background(), records)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, got...)
		tail, err := m.FlushContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return append(reports, tail...)
	}

	mSeq, err := NewMonitor(New(WithWorkers(1)), topo, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mPar, err := NewMonitor(New(WithWorkers(8)), topo, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seq := feedAll(mSeq)
	par := feedAll(mPar)
	if len(seq) < 2 {
		t.Fatalf("windows analyzed = %d, want >= 2", len(seq))
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("concurrent monitor reports diverge from sequential monitor's")
	}
}

func TestMonitorFeedContextCanceled(t *testing.T) {
	records, topo := concurrencyTrace(t)
	m, err := NewMonitor(New(), topo, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.FeedContext(ctx, records); err == nil {
		t.Error("canceled context did not abort window analysis")
	}
	if m.Pending() == 0 {
		t.Error("interrupted window's records should stay buffered")
	}
}
