package llmprism

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// concurrencyTrace simulates a three-job window once per test binary; the
// determinism tests below re-analyze it at several worker counts.
var (
	concOnce    sync.Once
	concRecords []FlowRecord
	concTopo    *Topology
	concErr     error
)

func concurrencyTrace(t testing.TB) ([]FlowRecord, *Topology) {
	t.Helper()
	concOnce.Do(func() {
		topoSpec := TopologySpec{Nodes: 24, NodesPerLeaf: 8, Spines: 4}
		jobs, err := PlanJobs(topoSpec, []JobPlan{
			{Nodes: 8, TargetStep: 2 * time.Second},
			{Nodes: 8, TargetStep: 3 * time.Second},
			{Nodes: 4, TargetStep: 2 * time.Second},
		}, 23)
		if err != nil {
			concErr = err
			return
		}
		res, err := Simulate(Scenario{
			Name: "concurrency", Topo: topoSpec, Jobs: jobs, Horizon: 20 * time.Second,
		})
		if err != nil {
			concErr = err
			return
		}
		concRecords = res.Records
		concTopo = res.Topo
	})
	if concErr != nil {
		t.Fatal(concErr)
	}
	return concRecords, concTopo
}

// TestAnalyzeContextMatchesSequential is the pipeline's determinism
// guarantee: the concurrent analysis of a multi-job window must be
// deep-equal — including float-typed alert values and switch series — to
// the sequential WithWorkers(1) pipeline's. Run with -race to also verify
// the fan-out is data-race-free.
func TestAnalyzeContextMatchesSequential(t *testing.T) {
	records, topo := concurrencyTrace(t)
	seq, err := New(WithWorkers(1)).Analyze(records, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3 (need a multi-job window to exercise the pool)", len(seq.Jobs))
	}
	for _, workers := range []int{2, 8} {
		par, err := New(WithWorkers(workers)).AnalyzeContext(context.Background(), records, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: report diverges from sequential pipeline", workers)
		}
	}
}

// TestAnalyzeJobOrderDeterministic pins the merge order contract: jobs are
// reported by smallest endpoint regardless of which worker finishes first.
func TestAnalyzeJobOrderDeterministic(t *testing.T) {
	records, topo := concurrencyTrace(t)
	report, err := New(WithWorkers(8)).AnalyzeContext(context.Background(), records, topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(report.Jobs); i++ {
		prev := report.Jobs[i-1].Cluster.Endpoints[0]
		cur := report.Jobs[i].Cluster.Endpoints[0]
		if cur <= prev {
			t.Errorf("job %d smallest endpoint %v not after job %d's %v", i, cur, i-1, prev)
		}
	}
}

func TestAnalyzeContextCanceled(t *testing.T) {
	records, topo := concurrencyTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := New(WithWorkers(workers)).AnalyzeContext(ctx, records, topo)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestMonitorFeedContextMatchesFeed(t *testing.T) {
	records, topo := concurrencyTrace(t)

	feedAll := func(m *Monitor) []*Report {
		t.Helper()
		var reports []*Report
		got, err := m.FeedContext(context.Background(), records)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, got...)
		tail, err := m.FlushContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if tail != nil {
			reports = append(reports, tail)
		}
		return reports
	}

	mSeq, err := NewMonitor(New(WithWorkers(1)), topo, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	mPar, err := NewMonitor(New(WithWorkers(8)), topo, 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seq := feedAll(mSeq)
	par := feedAll(mPar)
	if len(seq) < 2 {
		t.Fatalf("windows analyzed = %d, want >= 2", len(seq))
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("concurrent monitor reports diverge from sequential monitor's")
	}
}

func TestMonitorFeedContextCanceled(t *testing.T) {
	records, topo := concurrencyTrace(t)
	m, err := NewMonitor(New(), topo, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.FeedContext(ctx, records); err == nil {
		t.Error("canceled context did not abort window analysis")
	}
	if m.Pending() == 0 {
		t.Error("interrupted window's records should stay buffered")
	}
}
