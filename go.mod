module github.com/llmprism/llmprism

go 1.24
