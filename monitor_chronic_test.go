package llmprism

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/topology"
)

// chronicTrace simulates the multi-tenant platform the chronic tests
// share: three 8-node tenants on a 24-node fabric over a 2-minute
// horizon. With degrade set, the NIC link of node 4's first GPU is
// degraded for the entire horizon, so its DP group is chronically slower
// than its peers. Operationally that trace is still fault-free — the
// slowness is the platform's steady state, not an event — yet the
// cross-group detector flags the group as an outlier in every window:
// the chronic false alert stream this PR suppresses.
func chronicTrace(t testing.TB, degrade bool) ([]FlowRecord, *Topology) {
	t.Helper()
	spec := TopologySpec{Nodes: 24, NodesPerLeaf: 3, Spines: 8}
	jobs, err := PlanJobs(spec, []JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2 * time.Minute
	var schedule FaultSchedule
	if degrade {
		topo, err := NewTopology(spec)
		if err != nil {
			t.Fatal(err)
		}
		slowNIC := topology.LinkID(int(topo.AddrOf(4, 0)))
		schedule.Faults = []Fault{{
			Kind: FaultLinkDegrade, Link: slowNIC,
			At: 0, Until: horizon, Factor: 0.3,
		}}
	}
	res, err := Simulate(Scenario{
		Name: "chronic-baseline", Topo: spec, Jobs: jobs,
		Horizon: horizon, Faults: schedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Records, res.Topo
}

func crossGroupAlerts(r *Report) int {
	n := 0
	for _, j := range r.Jobs {
		for _, a := range j.Alerts {
			if a.Kind == AlertCrossGroup {
				n++
			}
		}
	}
	return n
}

func feedAll(t *testing.T, m *Monitor, records []FlowRecord) []*Report {
	t.Helper()
	reports, err := m.Feed(records)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	return append(reports, tail...)
}

// TestMonitorChronicSuppression is the chronic-false-alert regression
// test. The structurally slow DP group fires a cross-group alert on its
// anchor rank in every window — the pre-fix behavior, held as the test's
// precondition — and without suppression its host tops the suspect ranking
// in every steady-state window, drowning out anything else. With
// WithChronicSuppression the incident turns chronic after the baseline
// period: its alerts leave the surface, its evidence leaves localization
// (the host disappears from the suspect list entirely), and the incident
// itself stays visible (Chronic, StillFiring) instead of vanishing.
// Transient alerts elsewhere keep flowing — suppression must never eat
// fresh events.
func TestMonitorChronicSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	records, topo := chronicTrace(t, true)
	slow := topo.AddrOf(4, 0) // the chronically degraded rank (chronicTrace)
	const window = 20 * time.Second
	// Window 0 is a quiet warmup; the chronic alert fires from window 1 and
	// the incident reaches ChronicAfter (3 windows) at window 3.
	const firstAlert, warmup = 1, 3
	newMonitor := func(opts ...MonitorOption) *Monitor {
		m, err := NewMonitor(New(WithSigmaK(4), WithLocalization(LocalizationConfig{})), topo, window, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	slowCrossGroup := func(r *Report) bool {
		for _, j := range r.Jobs {
			for _, a := range j.Alerts {
				if a.Kind == AlertCrossGroup && a.GroupAnchor == slow {
					return true
				}
			}
		}
		return false
	}

	// Precondition: without suppression the chronic alert fires in every
	// window and its host tops every steady-state suspect ranking — the
	// bug this PR exists to fix.
	raw := feedAll(t, newMonitor(), records)
	if len(raw) < 5 {
		t.Fatalf("windows = %d, want >= 5", len(raw))
	}
	for i, r := range raw {
		if i < firstAlert {
			continue
		}
		if !slowCrossGroup(r) {
			t.Fatalf("window %d: fixture lost its chronic cross-group alert on %v", i, slow)
		}
		if i >= warmup {
			if len(r.Suspects) == 0 || r.Suspects[0].Component.Kind != localize.ComponentHost || r.Suspects[0].Component.Host != slow {
				t.Fatalf("window %d: chronic host should top the raw suspect ranking", i)
			}
		}
	}

	// With suppression: the baseline learning period may still alert, but
	// once the incident turns chronic its alerts and localization evidence
	// are gone while the incident stays visible.
	suppressed := feedAll(t, newMonitor(WithChronicSuppression(IncidentConfig{})), records)
	if len(suppressed) != len(raw) {
		t.Fatalf("suppressed run emitted %d windows, raw %d", len(suppressed), len(raw))
	}
	for i, r := range suppressed {
		if i < warmup {
			continue
		}
		if slowCrossGroup(r) {
			t.Errorf("window %d: chronic cross-group alert on %v still on the surface", i, slow)
		}
		chronicFiring := false
		for _, inc := range r.Incidents {
			if inc.Chronic && inc.StillFiring && inc.Key.Kind == AlertCrossGroup && inc.Key.Rank == slow {
				chronicFiring = true
			}
		}
		if !chronicFiring {
			t.Errorf("window %d: suppressed incident must stay visible as chronic", i)
		}
		for _, s := range r.Suspects {
			if s.Component.Kind == localize.ComponentHost && s.Component.Host == slow {
				t.Errorf("window %d: suppressed evidence still localizes to %v", i, slow)
			}
		}
	}
}

// TestMonitorGroupRailStratification drives the per-rail population split
// end to end: with the trailing TP rail as its own comparison class, the
// structurally slow groups never read as outliers and the fault-free trace
// raises no cross-group alert in any window — no suppression needed.
func TestMonitorGroupRailStratification(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	records, topo := chronicTrace(t, false)
	gpus := topo.Spec().GPUsPerNode
	analyzer := New(WithSigmaK(4), WithGroupRails(func(a Addr) int {
		if topo.GPUOf(a) == gpus-1 {
			return 1
		}
		return 0
	}))
	m, err := NewMonitor(analyzer, topo, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range feedAll(t, m, records) {
		if n := crossGroupAlerts(r); n != 0 {
			t.Errorf("window %d: %d cross-group alerts despite rail stratification, want 0", i, n)
		}
	}
}

// TestMonitorSuppressionStreamMatchesFeed extends the stream/feed
// equivalence gate to the suppression path, where localization runs in
// annotate instead of inside the analysis: reports — fused suspects,
// incidents, suppressed alert surface — must stay bit-identical across
// ingestion paths, worker counts and pipeline depths.
func TestMonitorSuppressionStreamMatchesFeed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	spec := TopologySpec{Nodes: 24, NodesPerLeaf: 3, Spines: 4}
	jobs, err := PlanJobs(spec, []JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	topo0, err := NewTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Scenario{
		Name: "suppression-equivalence", Topo: spec, Jobs: jobs,
		Horizon: 60 * time.Second,
		Faults: FaultSchedule{Faults: []Fault{{
			Kind: FaultSwitchDegrade, Switch: topo0.SpineSwitch(1),
			At: 15 * time.Second, Until: 60 * time.Second, Factor: 0.15,
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	records, topo := res.Records, res.Topo
	const window = 15 * time.Second
	newM := func(workers int, opts ...MonitorOption) *Monitor {
		m, err := NewMonitor(New(WithWorkers(workers), WithSwitchBucket(5*time.Second), WithLocalization(LocalizationConfig{})), topo, window,
			append([]MonitorOption{WithChronicSuppression(IncidentConfig{})}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	want := feedAll(t, newM(1), records)
	if len(want) < 3 {
		t.Fatalf("windows = %d, want >= 3", len(want))
	}
	var fused int
	for _, r := range want {
		fused += len(r.FusedSuspects)
	}
	if fused == 0 {
		t.Fatal("suppression run never produced fused suspects; fixture too quiet")
	}
	if got := feedAll(t, newM(8), records); !reflect.DeepEqual(want, got) {
		t.Fatal("concurrent Feed diverges from sequential Feed under suppression")
	}
	for _, depth := range []int{1, 3} {
		m := newM(8, WithPipelineDepth(depth))
		s, err := m.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := pushAll(t, s, records, 500)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("depth=%d: stream reports diverge from Feed loop under suppression", depth)
		}
	}
	// Arrival order within the allowed lateness must not matter either:
	// chronic classification and fused scores live on the serialized
	// in-order report path, so a permuted stream stays bit-identical.
	for seed := int64(0); seed < 2; seed++ {
		m := newM(8, WithPipelineDepth(3), WithLateness(2*time.Second))
		s, err := m.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		got := pushAll(t, s, permuteWithinLateness(records, time.Second, seed), 500)
		if s.Late() != 0 {
			t.Fatalf("seed %d: late = %d, want 0 (permutation stayed within lateness)", seed, s.Late())
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: permuted arrival diverges from Feed loop under suppression", seed)
		}
	}
}
