package llmprism

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

// pushAll replays records through a stream session in fixed-size batches
// and returns every report in window order.
func pushAll(t *testing.T, s *MonitorStream, records []FlowRecord, batch int) []*Report {
	t.Helper()
	var reports []*Report
	for lo := 0; lo < len(records); lo += batch {
		hi := lo + batch
		if hi > len(records) {
			hi = len(records)
		}
		got, err := s.Push(records[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, got...)
	}
	got, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(reports, got...)
}

// TestMonitorStreamMatchesFeed is the streaming engine's acceptance gate:
// for an in-order trace, the pipelined stream session must produce reports
// deep-equal — window bounds, job ids, alerts, float-typed series,
// incidents, localization suspects — to the serial Feed/Flush loop's, for
// every worker count and pipeline depth. Run with -race to verify the
// window handoff.
func TestMonitorStreamMatchesFeed(t *testing.T) {
	records, topo := concurrencyTrace(t)
	const window = 5 * time.Second

	feed := func(workers int) []*Report {
		m, err := NewMonitor(New(WithWorkers(workers), WithLocalization(LocalizationConfig{})), topo, window)
		if err != nil {
			t.Fatal(err)
		}
		var reports []*Report
		for lo := 0; lo < len(records); lo += 500 {
			hi := lo + 500
			if hi > len(records) {
				hi = len(records)
			}
			got, err := m.Feed(records[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, got...)
		}
		tail, err := m.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return append(reports, tail...)
	}

	want := feed(1)
	if len(want) < 3 {
		t.Fatalf("windows = %d, want >= 3", len(want))
	}
	if !reflect.DeepEqual(want, feed(8)) {
		t.Fatal("concurrent Feed diverges from sequential Feed")
	}

	for _, workers := range []int{1, 8} {
		for _, depth := range []int{1, 3} {
			m, err := NewMonitor(New(WithWorkers(workers), WithLocalization(LocalizationConfig{})), topo, window, WithPipelineDepth(depth))
			if err != nil {
				t.Fatal(err)
			}
			s, err := m.Stream(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got := pushAll(t, s, records, 500)
			if s.Late() != 0 {
				t.Errorf("workers=%d depth=%d: late = %d, want 0", workers, depth, s.Late())
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("workers=%d depth=%d: stream reports diverge from Feed loop", workers, depth)
			}
		}
	}
}

// TestMonitorStreamPermutationInvariance is the ordering property the
// watermark guarantees: any arrival permutation whose records stay within
// the allowed lateness yields bit-identical reports — localization
// suspects included — and zero late drops.
func TestMonitorStreamPermutationInvariance(t *testing.T) {
	records, topo := concurrencyTrace(t)
	const (
		window   = 5 * time.Second
		lateness = 2 * time.Second
	)

	run := func(recs []FlowRecord, depth int) []*Report {
		m, err := NewMonitor(New(WithWorkers(4), WithLocalization(LocalizationConfig{})), topo, window,
			WithLateness(lateness), WithPipelineDepth(depth))
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		reports := pushAll(t, s, recs, 300)
		if s.Late() != 0 {
			t.Fatalf("late = %d, want 0 (permutation stayed within lateness)", s.Late())
		}
		return reports
	}

	want := run(records, 1)
	for seed := int64(0); seed < 4; seed++ {
		perm := permuteWithinLateness(records, lateness/2, seed)
		if got := run(perm, 3); !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: permuted arrival diverges from in-order run", seed)
		}
	}
}

// permuteWithinLateness shuffles records within consecutive time chunks of
// the given span, bounding every record's arrival displacement below the
// lateness the monitor allows. The first record stays first, keeping the
// window grid anchor unchanged.
func permuteWithinLateness(records []FlowRecord, span time.Duration, seed int64) []FlowRecord {
	out := append([]FlowRecord(nil), records...)
	rng := rand.New(rand.NewSource(seed))
	lo := 1 // keep the anchor record in place
	for lo < len(out) {
		hi := lo
		for hi < len(out) && out[hi].Start.Sub(out[lo].Start) < span {
			hi++
		}
		rng.Shuffle(hi-lo, func(i, j int) { out[lo+i], out[lo+j] = out[lo+j], out[lo+i] })
		lo = hi
	}
	return out
}

// TestMonitorStreamLateRecordsDropped pins the late policy: a record past
// the lateness bound is dropped and counted, never misfiled into a newer
// window (the batch path's failure mode).
func TestMonitorStreamLateRecordsDropped(t *testing.T) {
	m, topo := monitorFixture(t)
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	batch := []FlowRecord{
		monitorRecord(1, 0, topo),
		monitorRecord(2, 15*time.Second, topo), // closes window [0,10)
	}
	if _, err := s.Push(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push([]FlowRecord{monitorRecord(3, 5*time.Second, topo)}); err != nil {
		t.Fatal(err)
	}
	if s.Late() != 1 {
		t.Errorf("late = %d, want 1", s.Late())
	}
	reports, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, r := range reports {
		for _, j := range r.Jobs {
			total += len(j.Records)
		}
	}
	if total != 2 {
		t.Errorf("records analyzed = %d, want 2 (late record dropped)", total)
	}
}

// TestMonitorStreamHopped checks overlapping windows against the direct
// per-window reference: each grid window's analysis must equal analyzing
// its record slice from scratch, and every window must carry the right
// bounds — empty grid slots included.
func TestMonitorStreamHopped(t *testing.T) {
	records, topo := concurrencyTrace(t)
	const (
		window = 8 * time.Second
		hop    = 4 * time.Second
	)
	m, err := NewMonitor(New(WithWorkers(2)), topo, window, WithHop(hop))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reports := pushAll(t, s, records, 400)
	if len(reports) < 4 {
		t.Fatalf("windows = %d, want >= 4", len(reports))
	}

	sorted := append([]FlowRecord(nil), records...)
	flow.SortByStart(sorted)
	// The grid's first emitted window is the leading partial phase
	// covering the anchor: it starts (width/hop - 1) hops before it.
	anchor := sorted[0].Start.Add(-(window/hop - 1) * hop)
	for i, r := range reports {
		wantStart := anchor.Add(time.Duration(i) * hop)
		if r.Window.Seq != i || !r.Window.Start.Equal(wantStart) || !r.Window.End.Equal(wantStart.Add(window)) {
			t.Fatalf("report %d window = %+v, want seq %d at %v", i, r.Window, i, wantStart)
		}
		recs := flow.Window(sorted, r.Window.Start, r.Window.End)
		if len(recs) == 0 {
			if len(r.Jobs) != 0 {
				t.Errorf("window %d should be empty", i)
			}
			continue
		}
		want, err := New(WithWorkers(1)).Analyze(recs, topo)
		if err != nil {
			t.Fatal(err)
		}
		got := *r
		got.Window = WindowInfo{}
		got.Incidents = nil
		got.Jobs = append([]JobReport(nil), r.Jobs...)
		for j := range got.Jobs {
			got.Jobs[j].JobID = 0
		}
		if !reflect.DeepEqual(&got, want) {
			t.Errorf("window %d diverges from direct analysis of its slice", i)
		}
	}
	// Cross-window continuity: the same job keeps one id in every window.
	ids := map[JobID]int{}
	for _, r := range reports {
		for _, j := range r.Jobs {
			ids[j.JobID]++
		}
	}
	for id, n := range ids {
		if id == 0 {
			t.Error("monitor report left JobID unset")
		}
		if n < 2 {
			t.Errorf("job %d appeared in only %d windows; identity not carried", id, n)
		}
	}
}

// TestMonitorStreamIncidentContinuity degrades a spine switch for most of
// the trace and checks the switch-bandwidth alerts it raises window after
// window surface as one ongoing incident with a stable first-seen time —
// not an unrelated alert pile per window.
func TestMonitorStreamIncidentContinuity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed; skipped in -short")
	}
	// Same shape as TestEndToEndSwitchDegradationDetection: 3 nodes per
	// leaf makes every DP group span leaves, so collectives traverse the
	// degraded spine in every window.
	topoSpec := TopologySpec{Nodes: 24, NodesPerLeaf: 3, Spines: 4}
	topo, err := NewTopology(topoSpec)
	if err != nil {
		t.Fatal(err)
	}
	badSpine := topo.SpineSwitch(1)
	jobs, err := PlanJobs(topoSpec, []JobPlan{
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(Scenario{
		Name: "incident-continuity", Topo: topoSpec, Jobs: jobs,
		Faults: FaultSchedule{Faults: []Fault{{
			Kind: FaultSwitchDegrade, Switch: badSpine,
			At: 15 * time.Second, Until: 60 * time.Second, Factor: 0.15,
		}}},
		Horizon: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(New(WithSwitchBucket(5*time.Second), WithLocalization(LocalizationConfig{})),
		res.Topo, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reports := pushAll(t, s, res.Records, 2000)

	var firstSeen time.Time
	maxWindows := 0
	for _, r := range reports {
		for _, inc := range r.Incidents {
			if inc.Key.Kind != AlertSwitchBandwidth || inc.Key.Switch != badSpine {
				continue
			}
			if firstSeen.IsZero() {
				firstSeen = inc.FirstSeen
			} else if inc.StillFiring && !inc.FirstSeen.Equal(firstSeen) {
				t.Errorf("incident first-seen drifted: %v -> %v", firstSeen, inc.FirstSeen)
			}
			if inc.Windows > maxWindows {
				maxWindows = inc.Windows
			}
		}
	}
	if firstSeen.IsZero() {
		t.Fatal("degraded spine raised no switch-bandwidth incident")
	}
	if maxWindows < 2 {
		t.Errorf("incident spanned %d windows, want >= 2 (one ongoing incident, not per-window alerts)", maxWindows)
	}

	// Localization continuity rides the same in-order path: the degraded
	// spine must top the suspect list, keep its first-seen stamp and
	// accumulate windows while it stays suspect.
	var suspectFirst time.Time
	suspectWindows := 0
	for _, r := range reports {
		if len(r.Suspects) == 0 {
			continue
		}
		top := r.Suspects[0]
		if top.Component != (SuspectComponent{Kind: ComponentSwitch, Switch: badSpine}) {
			continue
		}
		if suspectFirst.IsZero() {
			suspectFirst = top.FirstSeen
		} else if !top.FirstSeen.Equal(suspectFirst) {
			t.Errorf("suspect first-seen drifted: %v -> %v", suspectFirst, top.FirstSeen)
		}
		if top.Windows > suspectWindows {
			suspectWindows = top.Windows
		}
	}
	if suspectFirst.IsZero() {
		t.Fatal("degraded spine never topped the suspect ranking")
	}
	if suspectWindows < 2 {
		t.Errorf("spine stayed top suspect for %d windows, want >= 2", suspectWindows)
	}
}

func TestMonitorStreamCanceled(t *testing.T) {
	records, topo := concurrencyTrace(t)
	m, err := NewMonitor(New(), topo, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := m.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Push(records)
	if err == nil {
		_, err = s.Close()
	}
	if err == nil {
		t.Fatal("canceled context did not abort streaming analysis")
	}
	if _, err2 := s.Push(nil); err2 == nil {
		t.Error("session should stay dead after an error")
	}
}

func TestMonitorFeedStreamExclusive(t *testing.T) {
	m, topo := monitorFixture(t)
	if _, err := m.Stream(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Feed([]FlowRecord{monitorRecord(1, 0, topo)}); err == nil {
		t.Error("Feed should refuse while a Stream session is open")
	}
	if _, err := m.Stream(context.Background()); err == nil {
		t.Error("second Stream session should refuse")
	}

	// The opposite order: a monitor with Feed state refuses Stream.
	m2, _ := monitorFixture(t)
	if _, err := m2.Feed([]FlowRecord{monitorRecord(1, 0, topo)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Stream(context.Background()); err == nil {
		t.Error("Stream should refuse a monitor with Feed-buffered records")
	}
}

// TestMonitorFlushSpansWindows pins the Flush fix: with a lateness bound
// the Feed buffer can span several grid windows when the stream ends, and
// each must get its own bounds-correct report — byte-identical to what
// Stream.Close emits for the same trace.
func TestMonitorFlushSpansWindows(t *testing.T) {
	newM := func() (*Monitor, *topology.Topology) {
		topo, err := topology.New(TopologySpec{Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMonitor(New(), topo, 10*time.Second, WithLateness(5*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return m, topo
	}
	m, topo := newM()
	batch := []FlowRecord{
		monitorRecord(1, 0, topo),
		monitorRecord(2, 12*time.Second, topo),
		monitorRecord(3, 14*time.Second, topo),
	}
	// Nothing closes: newest (14s) < window + lateness (15s).
	reports, err := m.Feed(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("premature reports: %d", len(reports))
	}
	flushed, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 2 {
		t.Fatalf("flush reports = %d, want 2 (buffer spans two grid windows)", len(flushed))
	}
	for i, r := range flushed {
		var n int
		for _, j := range r.Jobs {
			n += len(j.Records)
		}
		wantRecs := []int{1, 2}[i]
		if n != wantRecs {
			t.Errorf("flush window %d holds %d records, want %d", i, n, wantRecs)
		}
		for _, j := range r.Jobs {
			for _, rec := range j.Records {
				if rec.Start.Before(r.Window.Start) || !rec.Start.Before(r.Window.End) {
					t.Errorf("window %d record at %v outside bounds %+v", i, rec.Start, r.Window)
				}
			}
		}
	}

	m2, _ := newM()
	s, err := m2.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	streamed := pushAll(t, s, batch, len(batch))
	if !reflect.DeepEqual(flushed, streamed) {
		t.Error("Feed+Flush reports diverge from Stream+Close on the same trace")
	}
}

// TestMonitorHugeGapGuard pins the corrupt-timestamp guard at the monitor
// level, on both paths: one record decades ahead yields a handful of
// reports — with Feed+Flush and Stream+Close still byte-identical — not
// one empty report per grid slot across the gap.
func TestMonitorHugeGapGuard(t *testing.T) {
	newM := func() *Monitor {
		topo, err := topology.New(TopologySpec{Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMonitor(New(), topo, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	topo, err := topology.New(TopologySpec{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	batch := []FlowRecord{
		monitorRecord(1, 0, topo),
		monitorRecord(2, 10*365*24*time.Hour, topo),
	}

	m := newM()
	reports, err := m.Feed(batch)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	fed := append(reports, tail...)
	if len(fed) > 3 {
		t.Fatalf("Feed emitted %d reports across the gap, want a handful", len(fed))
	}

	s, err := newM().Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	streamed := pushAll(t, s, batch, len(batch))
	if !reflect.DeepEqual(fed, streamed) {
		t.Error("gap-skipping Feed reports diverge from Stream's")
	}
}

func TestMonitorStreamPushAfterClose(t *testing.T) {
	m, topo := monitorFixture(t)
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push([]FlowRecord{monitorRecord(1, 0, topo)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push([]FlowRecord{monitorRecord(2, time.Second, topo)}); err == nil {
		t.Error("push after Close should refuse")
	}
	if _, err := s.Close(); err == nil {
		t.Error("double Close should refuse")
	}
}

// TestMonitorHugeGapGuardWithLateness is the gap guard's equivalence
// corner: with a nonzero lateness bound the engine's push-time jump stops
// at the watermark while the flush jump does not, and the Feed path must
// mirror both so the two paths still emit identical report sequences.
func TestMonitorHugeGapGuardWithLateness(t *testing.T) {
	topo, err := topology.New(TopologySpec{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	newM := func() *Monitor {
		m, err := NewMonitor(New(), topo, 10*time.Second, WithLateness(5*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	batch := []FlowRecord{
		monitorRecord(1, 0, topo),
		monitorRecord(2, 10*365*24*time.Hour, topo),
	}

	m := newM()
	fed, err := m.Feed(batch)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	fed = append(fed, tail...)

	s, err := newM().Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	streamed := pushAll(t, s, batch, len(batch))
	if len(fed) > 4 {
		t.Fatalf("Feed emitted %d reports across the gap, want a handful", len(fed))
	}
	if !reflect.DeepEqual(fed, streamed) {
		t.Errorf("gap-skipping Feed reports diverge from Stream's under lateness:\nfeed %d reports, stream %d", len(fed), len(streamed))
	}
}

// TestMonitorStreamPreAnchorStraggler pins the negative-k grid at the
// monitor level: a within-lateness record older than the first batch's
// minimum lands in its own earlier window instead of being dropped.
func TestMonitorStreamPreAnchorStraggler(t *testing.T) {
	topo, err := topology.New(TopologySpec{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(New(), topo, 10*time.Second, WithLateness(6*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push([]FlowRecord{monitorRecord(1, 10*time.Second, topo)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push([]FlowRecord{monitorRecord(2, 5*time.Second, topo)}); err != nil {
		t.Fatal(err)
	}
	if s.Late() != 0 {
		t.Fatalf("late = %d, want 0 (straggler within lateness)", s.Late())
	}
	reports, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2", len(reports))
	}
	epoch := monitorRecord(0, 0, topo).Start
	if !reports[0].Window.Start.Equal(epoch) || !reports[0].Window.End.Equal(epoch.Add(10*time.Second)) {
		t.Errorf("straggler window = %+v, want [0s,10s)", reports[0].Window)
	}
	if n := len(reports[0].Jobs); n != 1 {
		t.Errorf("straggler window jobs = %d, want 1", n)
	}
}
