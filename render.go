package llmprism

import (
	"time"

	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/truth"
	"github.com/llmprism/llmprism/internal/viz"
)

// Rendering and scoring helpers re-exported for library users and the
// examples; implementations live in internal/viz and internal/truth.

// RenderClusterGrid draws the Fig. 3-style cluster view: one row per
// server, one column per GPU, one glyph per cluster.
func RenderClusterGrid(topo *Topology, clusters [][]Addr) string {
	return viz.ClusterGrid(topo, clusters)
}

// RenderJobGrid is RenderClusterGrid for recognized job clusters.
func RenderJobGrid(topo *Topology, jobs []JobCluster) string {
	return viz.JobClusterGrid(topo, jobs)
}

// RenderTimelines draws Fig. 4-style per-rank swimlanes over [from, to).
func RenderTimelines(tls map[Addr]*Timeline, ranks []Addr, from, to time.Time, width int) string {
	return viz.TimelineSwimlanes(tls, ranks, from, to, width)
}

// RenderSwitchSeries draws the Fig. 5-style per-switch DP bandwidth table.
// name may be nil to use raw switch ids.
func RenderSwitchSeries(series map[SwitchID][]SwitchPoint, name func(SwitchID) string) string {
	return viz.BandwidthSeries(series, name)
}

// RenderAlerts lists alerts one per line, sorted by time.
func RenderAlerts(alerts []Alert) string { return viz.AlertList(alerts) }

// CrossMachineClusters exposes phase 1 of job recognition on its own: the
// pre-topology-merge clusters (the paper's Fig. 3 middle panel).
func CrossMachineClusters(records []FlowRecord) [][]Addr {
	return jobrec.CrossMachineClusters(records)
}

// Ground-truth scoring re-exports, for evaluating an analysis against a
// simulation's known configuration.
type (
	// TruthJob is one job's ground truth from a simulation.
	TruthJob = truth.Job
	// RecognitionScore scores job recognition.
	RecognitionScore = truth.RecognitionScore
	// TimelineScore scores timeline reconstruction.
	TimelineScore = truth.TimelineScore
)

// ScoreRecognition compares predicted clusters against true jobs.
func ScoreRecognition(predicted [][]Addr, jobs []TruthJob) RecognitionScore {
	return truth.ScoreRecognition(predicted, jobs)
}

// ScoreTimelines compares reconstructed step boundaries of one job's
// timelines against its ground truth.
func ScoreTimelines(tls map[Addr]*Timeline, epoch time.Time, job TruthJob) TimelineScore {
	return truth.ScoreTimeline(timeline.AllStepEnds(tls, epoch), job)
}

// MeanStepDuration reports the mean reconstructed step duration of a
// timeline (0 if it has fewer than two steps).
func MeanStepDuration(tl *Timeline) time.Duration {
	return timeline.MeanStepDuration(tl)
}
