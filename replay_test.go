package llmprism

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/topology"
)

// replayArchive opens an archive image and pushes every archived window's
// records back through a fresh monitor session on the recorded grid,
// returning the reports — the library-level equivalent of `llmprism
// replay`.
func replayArchive(t *testing.T, data []byte, topo *topology.Topology, opts ...Option) []*Report {
	t.Helper()
	ar, err := archive.OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	meta := ar.Meta()
	mopts := []MonitorOption{
		WithLateness(meta.Lateness),
		WithPipelineDepth(3),
	}
	if !ar.Anchor().IsZero() {
		mopts = append(mopts, WithAnchor(ar.Anchor()))
	}
	m, err := NewMonitor(New(opts...), topo, meta.Width, mopts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var reports []*Report
	if err := ar.Replay(func(_ archive.Segment, f *FlowFrame) error {
		got, err := s.Push(f.RecordsByStart())
		reports = append(reports, got...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tail, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(reports, tail...)
}

// TestArchiveReplayReproducesReports is the archive acceptance gate: a
// streaming session recorded through WithArchive, reopened and replayed
// through Monitor.Stream, must reproduce the recorded reports bit for bit
// — window bounds, job ids, float-typed series, incidents, localization
// suspects — including when the live session ingested records out of
// order within the lateness bound. Run with -race to cover the pipelined
// archive handoff.
func TestArchiveReplayReproducesReports(t *testing.T) {
	records, topo := concurrencyTrace(t)
	const (
		window   = 5 * time.Second
		lateness = 2 * time.Second
	)

	record := func(recs []FlowRecord) ([]*Report, []byte) {
		var buf bytes.Buffer
		m, err := NewMonitor(New(WithWorkers(4), WithLocalization(LocalizationConfig{})), topo, window,
			WithLateness(lateness), WithPipelineDepth(3), WithArchive(&buf))
		if err != nil {
			t.Fatal(err)
		}
		s, err := m.Stream(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		reports := pushAll(t, s, recs, 300)
		return reports, buf.Bytes()
	}

	want, data := record(records)
	if len(want) < 3 {
		t.Fatalf("windows = %d, want >= 3", len(want))
	}
	got := replayArchive(t, data, topo, WithWorkers(4), WithLocalization(LocalizationConfig{}))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("replayed reports diverge from recorded session")
	}
	// Worker count must not matter on replay either.
	if got1 := replayArchive(t, data, topo, WithWorkers(1), WithLocalization(LocalizationConfig{})); !reflect.DeepEqual(want, got1) {
		t.Fatal("replay with 1 worker diverges from recorded session")
	}

	// A live session that saw the same records permuted within the
	// lateness bound archives the same windows; its replay must reproduce
	// its reports too.
	permuted, permData := record(permuteWithinLateness(records, lateness/2, 3))
	if !reflect.DeepEqual(want, permuted) {
		t.Fatal("permuted live session diverges (pre-existing invariant)")
	}
	if got := replayArchive(t, permData, topo, WithWorkers(4), WithLocalization(LocalizationConfig{})); !reflect.DeepEqual(permuted, got) {
		t.Fatal("replay of permuted-session archive diverges")
	}
}

// TestArchiveReplayPreAnchorStraggler pins the recorded grid anchor: when
// the live session's grid was anchored by a record that was not the
// globally earliest (a within-lateness straggler opened an earlier
// window), replay must restore the original grid origin — re-anchoring at
// the earliest replayed record would shift every window's bounds.
func TestArchiveReplayPreAnchorStraggler(t *testing.T) {
	topo, err := topology.New(TopologySpec{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m, err := NewMonitor(New(), topo, 10*time.Second,
		WithLateness(6*time.Second), WithArchive(&buf))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The 10s record anchors the grid; the 5s straggler then opens the
	// earlier window [0s, 10s).
	if _, err := s.Push([]FlowRecord{monitorRecord(1, 10*time.Second, topo)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push([]FlowRecord{monitorRecord(2, 5*time.Second, topo)}); err != nil {
		t.Fatal(err)
	}
	want, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 2 {
		t.Fatalf("recorded windows = %d, want 2", len(want))
	}
	got := replayArchive(t, buf.Bytes(), topo)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("replay diverges:\nwant window 0 %+v\n got window 0 %+v", want[0].Window, got[0].Window)
	}
}

// TestArchiveSinkFailurePropagates: a failing archive sink must kill the
// session with an error, not record a silently incomplete trace.
func TestArchiveSinkFailurePropagates(t *testing.T) {
	records, topo := concurrencyTrace(t)
	m, err := NewMonitor(New(), topo, 5*time.Second, WithArchive(limitedWriter{limit: 64}))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err == nil {
		_, err = s.Push(records)
		if err == nil {
			_, err = s.Close()
		}
	}
	if err == nil {
		t.Fatal("failing archive sink did not surface an error")
	}
}

type limitedWriter struct{ limit int }

func (lw limitedWriter) Write(p []byte) (int, error) {
	if len(p) > lw.limit {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}
