package llmprism

import (
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

func monitorFixture(t *testing.T) (*Monitor, *topology.Topology) {
	t.Helper()
	topo, err := topology.New(TopologySpec{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(New(), topo, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return m, topo
}

func monitorRecord(id uint64, at time.Duration, topo *topology.Topology) FlowRecord {
	epoch := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	return FlowRecord{
		ID:    id,
		Start: epoch.Add(at),
		Src:   topo.AddrOf(0, 0),
		Dst:   topo.AddrOf(1, 0),
		Bytes: 1000,
	}
}

func TestNewMonitorValidation(t *testing.T) {
	topo, err := topology.New(TopologySpec{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitor(nil, topo, time.Minute); err == nil {
		t.Error("nil analyzer accepted")
	}
	if _, err := NewMonitor(New(), nil, time.Minute); err == nil {
		t.Error("nil mapper accepted")
	}
	m, err := NewMonitor(New(), topo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Window() != time.Minute {
		t.Errorf("default window = %v, want 1m", m.Window())
	}
}

func TestMonitorWindowing(t *testing.T) {
	m, topo := monitorFixture(t)

	// First batch covers 0..8s: no window closes.
	var batch []FlowRecord
	for i := 0; i < 8; i++ {
		batch = append(batch, monitorRecord(uint64(i+1), time.Duration(i)*time.Second, topo))
	}
	reports, err := m.Feed(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("premature reports: %d", len(reports))
	}
	if m.Pending() != 8 {
		t.Fatalf("Pending = %d, want 8", m.Pending())
	}

	// A record at 25s closes windows [0,10) and [10,20). Window [10,20)
	// holds no records but is still reported — with bounds and no jobs —
	// so report sequence numbers line up with wall-clock windows.
	reports, err = m.Feed([]FlowRecord{monitorRecord(100, 25*time.Second, topo)})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d, want 2 (empty window reported)", len(reports))
	}
	epoch := monitorRecord(0, 0, topo).Start
	for i, r := range reports {
		want := WindowInfo{
			Seq:   i,
			Start: epoch.Add(time.Duration(i) * 10 * time.Second),
			End:   epoch.Add(time.Duration(i+1) * 10 * time.Second),
		}
		if r.Window != want {
			t.Errorf("report %d window = %+v, want %+v", i, r.Window, want)
		}
	}
	if len(reports[1].Jobs) != 0 || reports[1].Alerts() != nil {
		t.Error("empty window report should carry no jobs or alerts")
	}
	if m.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", m.Pending())
	}

	// Flush analyzes the remainder, one report per grid window.
	flushed, err := m.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(flushed) != 1 {
		t.Fatalf("flush reports = %d, want 1", len(flushed))
	}
	if w := flushed[0].Window; w.Seq != 2 || !w.Start.Equal(epoch.Add(20*time.Second)) {
		t.Errorf("flush window = %+v, want seq 2 at 20s", w)
	}
	if m.Pending() != 0 {
		t.Errorf("Pending after flush = %d", m.Pending())
	}
	if r, err := m.Flush(); err != nil || r != nil {
		t.Error("second flush should be a nil no-op")
	}
}

func TestMonitorEmptyFeed(t *testing.T) {
	m, _ := monitorFixture(t)
	reports, err := m.Feed(nil)
	if err != nil || reports != nil {
		t.Error("empty feed should be a no-op")
	}
}

func TestMonitorOptionValidation(t *testing.T) {
	topo, err := topology.New(TopologySpec{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonitor(New(), topo, 10*time.Second, WithHop(11*time.Second)); err == nil {
		t.Error("hop exceeding window accepted")
	}
	if _, err := NewMonitor(New(), topo, 10*time.Second, WithLateness(-time.Second)); err == nil {
		t.Error("negative lateness accepted")
	}
	m, err := NewMonitor(New(), topo, 10*time.Second,
		WithHop(5*time.Second), WithLateness(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if m.Hop() != 5*time.Second || m.Lateness() != 2*time.Second {
		t.Errorf("hop/lateness = %v/%v, want 5s/2s", m.Hop(), m.Lateness())
	}
	// Overlapping windows require the streaming path.
	if _, err := m.Feed([]FlowRecord{monitorRecord(1, 0, topo)}); err == nil {
		t.Error("Feed with hop < window should refuse")
	}
}

func TestMonitorOutOfOrderTolerated(t *testing.T) {
	m, topo := monitorFixture(t)
	// Slightly out-of-order arrivals within the buffer must not break
	// windowing (only the new batch is sorted, then merged).
	batch := []FlowRecord{
		monitorRecord(2, 3*time.Second, topo),
		monitorRecord(1, 1*time.Second, topo),
		monitorRecord(3, 12*time.Second, topo),
	}
	reports, err := m.Feed(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1", len(reports))
	}
	if m.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", m.Pending())
	}
}

func TestFlowRecordAliasUsable(t *testing.T) {
	// The public aliases must interoperate with internal types.
	var r FlowRecord
	r.Src, r.Dst = 1, 2
	if r.Pair() != flow.MakePair(1, 2) {
		t.Error("alias type lost methods")
	}
}
