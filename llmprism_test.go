package llmprism

import (
	"bytes"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/topology"
)

func TestOptionsApply(t *testing.T) {
	var cfg Config
	for _, opt := range []Option{
		WithoutRefinement(),
		WithSigmaK(4),
		WithSwitchBucket(30 * time.Second),
		WithMaxConcurrentDPFlows(100),
	} {
		opt(&cfg)
	}
	if !cfg.Parallel.DisableRefinement {
		t.Error("WithoutRefinement not applied")
	}
	if cfg.Diagnosis.K != 4 {
		t.Error("WithSigmaK not applied")
	}
	if cfg.Diagnosis.Bucket != 30*time.Second {
		t.Error("WithSwitchBucket not applied")
	}
	if cfg.Diagnosis.MaxConcurrentDPFlows != 100 {
		t.Error("WithMaxConcurrentDPFlows not applied")
	}
	full := Config{Parallel: parallel.Config{MinFlows: 7}}
	var cfg2 Config
	WithConfig(full)(&cfg2)
	if cfg2.Parallel.MinFlows != 7 {
		t.Error("WithConfig not applied")
	}
}

func TestReportAlertsOrder(t *testing.T) {
	r := &Report{
		Jobs: []JobReport{
			{Alerts: []Alert{{Kind: AlertCrossStep}}},
			{Alerts: []Alert{{Kind: AlertCrossGroup}}},
		},
		SwitchAlerts: []Alert{{Kind: AlertSwitchBandwidth}},
	}
	alerts := r.Alerts()
	if len(alerts) != 3 {
		t.Fatalf("alerts = %d, want 3", len(alerts))
	}
	if alerts[0].Kind != AlertCrossStep || alerts[2].Kind != AlertSwitchBandwidth {
		t.Error("alert order wrong: job alerts first, then switch alerts")
	}
}

func TestAnalyzeDoesNotMutateInput(t *testing.T) {
	topo, err := topology.New(TopologySpec{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC)
	records := []FlowRecord{
		{ID: 2, Start: epoch.Add(time.Second), Src: topo.AddrOf(0, 0), Dst: topo.AddrOf(1, 0), Bytes: 10},
		{ID: 1, Start: epoch, Src: topo.AddrOf(0, 0), Dst: topo.AddrOf(1, 0), Bytes: 10},
	}
	if _, err := New().Analyze(records, topo); err != nil {
		t.Fatal(err)
	}
	if records[0].ID != 2 {
		t.Error("Analyze reordered the caller's slice")
	}
}

func TestPublicCodecAliases(t *testing.T) {
	records := []FlowRecord{{ID: 1, Start: time.Unix(0, 0).UTC(), Src: 1, Dst: 2, Bytes: 9}}
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteFlowsCSV(&csvBuf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlowsCSV(&csvBuf)
	if err != nil || len(got) != 1 || got[0].Bytes != 9 {
		t.Errorf("CSV alias round trip failed: %v %v", got, err)
	}
	if err := WriteFlowsJSONL(&jsonBuf, records); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFlowsJSONL(&jsonBuf)
	if err != nil || len(got) != 1 || got[0].Bytes != 9 {
		t.Errorf("JSONL alias round trip failed: %v %v", got, err)
	}
}

func TestAnalyzerRobustToDuplicatesAndSplits(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Heavy collector noise: duplicates and record splitting must not
	// change what the pipeline concludes.
	topoSpec := TopologySpec{Nodes: 8, NodesPerLeaf: 8, Spines: 2}
	jobs, err := PlanJobs(topoSpec, []JobPlan{{Nodes: 8, TargetStep: 2 * time.Second}}, 19)
	if err != nil {
		t.Fatal(err)
	}
	scenario := Scenario{
		Name: "noisy", Topo: topoSpec, Jobs: jobs, Horizon: 20 * time.Second,
	}
	scenario.Collector.DuplicateProb = 0.10
	scenario.Collector.TimeJitter = 5 * time.Microsecond
	scenario.Collector.Seed = 19
	res, err := Simulate(scenario)
	if err != nil {
		t.Fatal(err)
	}
	report, err := New().Analyze(res.Records, res.Topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(report.Jobs))
	}
	tj := res.Truth.Jobs[0]
	correct, total := 0, 0
	for p, ty := range report.Jobs[0].Types {
		want, ok := tj.Pairs[flow.MakePair(p.A, p.B)]
		if !ok {
			continue
		}
		total++
		if (ty == TypeDP) == (want == 2) { // truth.PairDP == 2
			correct++
		}
	}
	if total == 0 || correct != total {
		t.Errorf("classification under noise: %d/%d", correct, total)
	}
}
