package llmprism_test

// One benchmark per paper table/figure (E1-E5) and per ablation (A1-A3),
// running the same experiment harness as cmd/repro at reduced scale so a
// full `go test -bench=.` pass stays in the minutes range. cmd/repro runs
// the identical code at paper scale. Accuracy-style results are attached
// as custom benchmark metrics.

import (
	"bytes"
	"context"
	"fmt"
	"github.com/llmprism/llmprism"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/experiments"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/stream"
)

// BenchmarkFig3JobRecognition regenerates E1 (Fig. 3): job recognition
// over a multi-tenant cluster from a 1-minute flow window.
func BenchmarkFig3JobRecognition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(context.Background(), experiments.Options{Scale: 0.15, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Recognition.ExactMatches)/float64(res.Recognition.TrueJobs), "recognition")
		b.ReportMetric(float64(res.JobClusters), "jobs")
	}
}

// BenchmarkTable1Parallelism regenerates E2 (Table I): pair classification
// accuracy with and without refinement over 1- and 3-minute windows.
func BenchmarkTable1Parallelism(b *testing.B) {
	// 10s steps keep ~4-5 steps inside the 1-minute window at this toy
	// scale, so the per-pair mode has enough votes to be representative
	// of the paper-scale configuration cmd/repro runs.
	cfg := experiments.Table1Config{
		Jobs:        1,
		NodesPerJob: 32,
		Windows:     []time.Duration{time.Minute, 3 * time.Minute},
		TargetStep:  10 * time.Second,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(context.Background(), cfg, experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].AccWithout, "acc_1m_worefine")
		b.ReportMetric(res.Rows[0].AccWith, "acc_1m_refined")
	}
}

// BenchmarkFig4Timeline regenerates E3 (§V-C/Fig. 4): timeline
// reconstruction error against ground truth.
func BenchmarkFig4Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(context.Background(), experiments.Options{Scale: 0.15, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Score.MeanRelError, "err_pct")
	}
}

// BenchmarkFig5SwitchDiagnosis regenerates E4 (Fig. 5): switch-level
// bandwidth diagnosis under spine degradation.
func BenchmarkFig5SwitchDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(context.Background(), experiments.Options{Scale: 0.35, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.InjectedFlagged)/float64(len(res.Injected)), "recall")
		b.ReportMetric(float64(res.FalselyFlagged), "false_flags")
	}
}

// BenchmarkCrossStepDiagnosis regenerates the straggler half of E5 (§V-D).
func BenchmarkCrossStepDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Diagnosis(context.Background(), experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(boolMetric(res.StragglerJobDetected), "detected")
		b.ReportMetric(float64(res.CrossStepInWindow), "alerts_in_window")
	}
}

// BenchmarkCrossGroupDiagnosis regenerates the slow-DP-group half of E5.
func BenchmarkCrossGroupDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Diagnosis(context.Background(), experiments.Options{Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(boolMetric(res.SlowGroupDetected), "detected")
		b.ReportMetric(float64(res.CrossGroupAlerts), "alerts")
	}
}

// BenchmarkAblationNetsimMode regenerates A1: fluid vs analytic network
// model.
func BenchmarkAblationNetsimMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationNetsimMode(context.Background(), experiments.Options{Scale: 0.15, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.FairShareError, "fair_err_pct")
		b.ReportMetric(100*res.AnalyticError, "analytic_err_pct")
	}
}

// BenchmarkAblationStepSplitter regenerates A2: BOCD vs naive splitting.
func BenchmarkAblationStepSplitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationStepSplitter(context.Background(), experiments.Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.BOCDStepCountErr, "bocd_err_pct")
		b.ReportMetric(100*res.NaiveStepCountErr, "naive_err_pct")
	}
}

// BenchmarkAblationRingCount regenerates A3: ring count vs refinement.
func BenchmarkAblationRingCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationRingCount(context.Background(), experiments.Options{Scale: 0.5, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].AccWith, "acc_1ring")
		b.ReportMetric(res.Rows[len(res.Rows)-1].AccWith, "acc_4ring")
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- analysis-phase micro-benchmarks on a shared pre-simulated trace ---

var (
	benchOnce    sync.Once
	benchRecords []flow.Record
	benchTopo    *llmprism.Topology
	benchErr     error
)

func benchTrace(b *testing.B) ([]flow.Record, *llmprism.Topology) {
	b.Helper()
	benchOnce.Do(func() {
		topoSpec := llmprism.TopologySpec{Nodes: 32, NodesPerLeaf: 8, Spines: 4}
		jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
			{Nodes: 16, TargetStep: 3 * time.Second},
			{Nodes: 8, TargetStep: 2 * time.Second},
			{Nodes: 8, TargetStep: 4 * time.Second},
		}, 1)
		if err != nil {
			benchErr = err
			return
		}
		res, err := llmprism.Simulate(llmprism.Scenario{
			Name: "bench-trace", Topo: topoSpec, Jobs: jobs,
			Faults:  faults.Schedule{},
			Horizon: 60 * time.Second,
		})
		if err != nil {
			benchErr = err
			return
		}
		benchRecords = res.Records
		benchTopo = res.Topo
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRecords, benchTopo
}

// BenchmarkAnalyzePipeline measures the cost of the full four-phase
// analysis over one minute of flows from a 256-GPU platform — the quantity
// that determines whether continuous monitoring keeps up with collection.
// It runs at the default worker count (GOMAXPROCS).
func BenchmarkAnalyzePipeline(b *testing.B) {
	records, topo := benchTrace(b)
	analyzer := llmprism.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.Analyze(records, topo); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkAnalyze measures the same pipeline at fixed worker counts over
// the multi-job trace; workers=1 is the sequential baseline the multi-core
// speedup is read against (the three jobs' identify → timeline → diagnose
// chains dominate the runtime and fan out per job).
//
// Two ceilings cap the workers=N/workers=1 ratio, so read it against the
// host before calling it a regression:
//   - GOMAXPROCS: on a single-core host (the committed BENCH_analyze.json
//     baselines run on one) every count degenerates to serial execution
//     plus synchronization overhead, and the ratio hovers around 1.0x.
//   - Job granularity: the pool fans out per job, and this trace has three
//     jobs with a dominant 16-node job on the critical path, so even with
//     free cores the ratio is bounded near sum(job costs)/max(job cost)
//     ≈ 2x, not N. The frame build ahead of the fan-out is the parallel
//     BuildParallel and scales with cores independently of job count.
func BenchmarkAnalyze(b *testing.B) {
	records, topo := benchTrace(b)
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > counts[len(counts)-1] {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			analyzer := llmprism.New(llmprism.WithWorkers(workers))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analyzer.AnalyzeContext(context.Background(), records, topo); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(records)), "records/op")
		})
	}
}

// BenchmarkFrameBuild measures loading one window of records into the
// columnar frame — the sort, the column fill, and the path interning that
// every analysis now pays exactly once per window.
func BenchmarkFrameBuild(b *testing.B) {
	records, _ := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	var frame *llmprism.FlowFrame
	for i := 0; i < b.N; i++ {
		frame = llmprism.NewFlowFrame(records)
	}
	b.ReportMetric(float64(len(records)), "records/op")
	b.ReportMetric(float64(frame.PathTable().NumPaths()), "paths")
}

// BenchmarkFrameBuildParallel isolates the close-time Build over a
// pre-filled builder at fixed worker counts: workers=1 is the serial
// reference; higher counts run the sharded row sort, parallel column
// permutation, and parallel index build — all byte-identical to serial.
// The speedup is only visible when GOMAXPROCS > 1; on a single-core host
// the workers=4 run measures the sharding overhead instead (it must stay
// within a few percent of serial — the work partition is the same
// comparisons split into per-shard sorts plus one linear merge).
func BenchmarkFrameBuildParallel(b *testing.B) {
	records, _ := benchTrace(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				builder := flow.NewFrameBuilder()
				builder.Grow(len(records))
				for _, r := range records {
					builder.AppendRecord(r)
				}
				b.StartTimer()
				builder.BuildParallel(workers)
			}
			b.ReportMetric(float64(len(records)), "records/op")
		})
	}
}

// BenchmarkPushFrame compares the two replay-ingest paths over one decoded
// window: per-record Push (materialize []Record, re-intern every row) vs
// bulk PushFrame (wholesale column appends plus a one-shot path-table
// remap). The window is wider than the trace so nothing closes — this is
// pure wire-to-builder ingest, the daemon's hot path.
func BenchmarkPushFrame(b *testing.B) {
	records, _ := benchTrace(b)
	frame := flow.NewFrame(records)
	byStart := frame.RecordsByStart()
	cfg := stream.Config{Width: 24 * time.Hour}
	noop := func(_ context.Context, _ stream.Window, _ *flow.Frame) (struct{}, error) {
		return struct{}{}, nil
	}
	b.Run("records", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := stream.New(cfg, noop)
			if err := e.Push(context.Background(), byStart); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(records)), "records/op")
	})
	b.Run("bulk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := stream.New(cfg, noop)
			if err := e.PushFrame(context.Background(), frame); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(records)), "records/op")
	})
}

// BenchmarkAnalyzeFrame measures the pipeline over a pre-built frame at the
// default worker count: the steady-state cost when the collector emits
// frames directly and the analyzer never touches a record slice.
func BenchmarkAnalyzeFrame(b *testing.B) {
	records, topo := benchTrace(b)
	frame := llmprism.NewFlowFrame(records)
	analyzer := llmprism.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyzer.AnalyzeFrame(frame, topo); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// --- trace persistence: binary frame archive vs text codecs ---

// BenchmarkLoadTraceCSV is the text baseline the archive replaces: parse
// the CSV trace and rebuild the columnar frame (sort + path interning) —
// the cost every offline re-diagnosis paid before the binary format.
func BenchmarkLoadTraceCSV(b *testing.B) {
	records, _ := benchTrace(b)
	var csvBuf bytes.Buffer
	if err := flow.WriteCSV(&csvBuf, records); err != nil {
		b.Fatal(err)
	}
	data := csvBuf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := flow.ReadCSV(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if f := flow.NewFrame(recs); f.Len() != len(records) {
			b.Fatal("frame row mismatch")
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
	b.ReportMetric(float64(len(data)), "bytes")
}

// BenchmarkLoadTraceBinary decodes the same trace from the binary frame
// layout: a validated column copy plus index rebuild, no parsing, no sort.
func BenchmarkLoadTraceBinary(b *testing.B) {
	records, _ := benchTrace(b)
	frame := flow.NewFrame(records)
	var binBuf bytes.Buffer
	if _, err := frame.WriteTo(&binBuf); err != nil {
		b.Fatal(err)
	}
	data := binBuf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := flow.ReadFrame(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if f.Len() != len(records) {
			b.Fatal("frame row mismatch")
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
	b.ReportMetric(float64(len(data)), "bytes")
}

// BenchmarkArchiveWrite measures archiving the trace as one segment —
// the per-window persistence cost a recording monitor session adds.
func BenchmarkArchiveWrite(b *testing.B) {
	records, _ := benchTrace(b)
	frame := flow.NewFrame(records)
	from, to, _ := flow.TimeSpan(records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		aw, err := archive.NewWriter(&buf, archive.Meta{Width: time.Minute, Hop: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		if err := aw.Append(0, from, to, frame); err != nil {
			b.Fatal(err)
		}
		if err := aw.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkArchiveRead measures reopening that archive and decoding its
// frame — manifest validation plus the binary column decode.
func BenchmarkArchiveRead(b *testing.B) {
	records, _ := benchTrace(b)
	frame := flow.NewFrame(records)
	from, to, _ := flow.TimeSpan(records)
	var buf bytes.Buffer
	aw, err := archive.NewWriter(&buf, archive.Meta{Width: time.Minute, Hop: time.Minute})
	if err != nil {
		b.Fatal(err)
	}
	if err := aw.Append(0, from, to, frame); err != nil {
		b.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar, err := archive.OpenReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			b.Fatal(err)
		}
		f, err := ar.Frame(0)
		if err != nil {
			b.Fatal(err)
		}
		if f.Len() != len(records) {
			b.Fatal("frame row mismatch")
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
	b.ReportMetric(float64(len(data)), "bytes")
}

// monitorBenchBatches slices the trace into collector-export-sized batches
// (1-second cadence), computed once so the benches measure ingestion and
// analysis, not slicing.
var monitorBenchBatches [][]flow.Record

func benchBatches(b *testing.B) [][]flow.Record {
	b.Helper()
	records, _ := benchTrace(b)
	if monitorBenchBatches == nil {
		const cadence = time.Second
		cut := records[0].Start.Add(cadence)
		lo := 0
		for i, r := range records {
			if r.Start.After(cut) {
				monitorBenchBatches = append(monitorBenchBatches, records[lo:i])
				lo = i
				cut = cut.Add(cadence)
			}
		}
		monitorBenchBatches = append(monitorBenchBatches, records[lo:])
	}
	return monitorBenchBatches
}

// monitorBenchWindow gives the 60-second bench trace 12 windows, so the
// per-feed ingest cost is measured across enough window turnover to expose
// any dependence on total buffered history.
const monitorBenchWindow = 5 * time.Second

// BenchmarkMonitorFeed measures the synchronous Feed loop: batch-sorted
// merge ingestion plus one blocking window analysis per completed window.
func BenchmarkMonitorFeed(b *testing.B) {
	batches := benchBatches(b)
	records, topo := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		monitor, err := llmprism.NewMonitor(llmprism.New(), topo, monitorBenchWindow)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range batches {
			if _, err := monitor.Feed(batch); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := monitor.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(records)), "records/op")
}

// BenchmarkMonitorStream measures the pipelined streaming session over the
// same trace, batches and window grid: incremental per-window ingestion
// (append + intern per record, no buffered-history re-sort) with closed
// windows analyzing asynchronously at the given pipeline depth.
func BenchmarkMonitorStream(b *testing.B) {
	batches := benchBatches(b)
	records, topo := benchTrace(b)
	for _, depth := range []int{1, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				monitor, err := llmprism.NewMonitor(llmprism.New(), topo, monitorBenchWindow, llmprism.WithPipelineDepth(depth))
				if err != nil {
					b.Fatal(err)
				}
				s, err := monitor.Stream(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				for _, batch := range batches {
					if _, err := s.Push(batch); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(records)), "records/op")
		})
	}
}
