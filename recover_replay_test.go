package llmprism

import (
	"bytes"
	"context"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"github.com/llmprism/llmprism/internal/topology"
)

// archiveBoundaries walks a clean archive image and returns prefix
// lengths: bounds[k] is the byte length of a prefix holding exactly k
// complete segments (bounds[0] is the 32-byte header alone). Layout per
// the LPA1 package doc: each segment is a 40-byte header whose final u64
// is the frame blob length, followed by the blob.
func archiveBoundaries(t *testing.T, data []byte, segments int) []int64 {
	t.Helper()
	const (
		headerSize    = 32
		segHeaderSize = 40
	)
	bounds := []int64{headerSize}
	off := int64(headerSize)
	for k := 0; k < segments; k++ {
		frameLen := binary.LittleEndian.Uint64(data[off+32:])
		off += segHeaderSize + int64(frameLen)
		if off > int64(len(data)) {
			t.Fatalf("segment %d ends at %d, past archive end %d", k, off, len(data))
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// replayRecovered salvages an archive image (torn or clean) and replays
// whatever survived through a fresh monitor session on the reconstructed
// grid — the library-level equivalent of `llmprism replay -recover`.
func replayRecovered(t *testing.T, data []byte, topo *topology.Topology, opts ...Option) ([]*Report, *TraceRecoveryReport) {
	t.Helper()
	ar, rep, err := RecoverTraceArchive(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	meta := ar.Meta()
	mopts := []MonitorOption{
		WithLateness(meta.Lateness),
		WithPipelineDepth(3),
	}
	if !ar.Anchor().IsZero() {
		mopts = append(mopts, WithAnchor(ar.Anchor()))
	}
	m, err := NewMonitor(New(opts...), topo, meta.Width, mopts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var reports []*Report
	if err := ar.Replay(func(_ TraceArchiveSegment, f *FlowFrame) error {
		got, err := s.Push(f.RecordsByStart())
		reports = append(reports, got...)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tail, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	return append(reports, tail...), rep
}

// TestRecoveredArchiveReplaysSalvagedPrefix is the crash-equivalence gate
// for capture: an archive torn after window k — at a segment boundary or
// anywhere inside the next segment — salvages exactly k windows, and
// replaying them reproduces the first k reports of the uninterrupted
// session bit for bit (job ids, incidents, localization suspects). Run
// with -race to cover the pipelined replay handoff.
func TestRecoveredArchiveReplaysSalvagedPrefix(t *testing.T) {
	records, topo := concurrencyTrace(t)
	const (
		window   = 5 * time.Second
		lateness = 2 * time.Second
	)

	var buf bytes.Buffer
	m, err := NewMonitor(New(WithWorkers(4), WithLocalization(LocalizationConfig{})), topo, window,
		WithLateness(lateness), WithPipelineDepth(3), WithArchive(&buf))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := pushAll(t, s, records, 300)
	data := buf.Bytes()
	if len(want) < 3 {
		t.Fatalf("windows = %d, want >= 3", len(want))
	}

	// The clean image opens strictly.
	if _, rep := replayRecovered(t, data, topo, WithWorkers(4), WithLocalization(LocalizationConfig{})); !rep.Clean || rep.Segments != len(want) {
		t.Fatalf("clean archive: %s", rep)
	}

	bounds := archiveBoundaries(t, data, len(want))
	check := func(name string, cut int64, k int) {
		t.Helper()
		got, rep := replayRecovered(t, data[:cut], topo, WithWorkers(4), WithLocalization(LocalizationConfig{}))
		if rep.Clean {
			t.Fatalf("%s: torn archive reported clean", name)
		}
		if rep.Segments != k {
			t.Fatalf("%s: salvaged %d segments, want %d (%s)", name, rep.Segments, k, rep)
		}
		if len(got) != k {
			t.Fatalf("%s: replay produced %d windows, want %d", name, len(got), k)
		}
		if k > 0 && !reflect.DeepEqual(want[:k], got) {
			t.Errorf("%s: salvaged replay diverges from uninterrupted session", name)
		}
	}

	// Tear at every segment boundary: exactly that prefix survives.
	for k := 0; k <= len(want); k++ {
		check("boundary", bounds[k], k)
	}
	// Tears inside a segment lose only that segment.
	check("mid segment header", bounds[1]+13, 1)
	check("one byte short", bounds[2]-1, 1)
	check("mid frame blob", bounds[2]+60, 2)
}
