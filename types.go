package llmprism

import (
	"io"

	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/core/parallel"
	"github.com/llmprism/llmprism/internal/core/timeline"
	"github.com/llmprism/llmprism/internal/erspan"
	"github.com/llmprism/llmprism/internal/faults"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/model"
	"github.com/llmprism/llmprism/internal/netsim"
	"github.com/llmprism/llmprism/internal/platform"
	"github.com/llmprism/llmprism/internal/topology"
	"github.com/llmprism/llmprism/internal/trainsim"
	"github.com/llmprism/llmprism/internal/truth"
)

// Public aliases of the library's data types, so downstream users can name
// everything through this package while the implementation lives in
// internal packages.
type (
	// FlowRecord is one collected network flow (ERSPAN-style).
	FlowRecord = flow.Record
	// FlowFrame is the immutable columnar form of one flow window, with
	// interned switch paths and per-pair/per-job index views. Build with
	// NewFlowFrame and analyze with Analyzer.AnalyzeFrame.
	FlowFrame = flow.Frame
	// FlowView is a zero-copy subset of a FlowFrame (one job's rows).
	FlowView = flow.View
	// Addr is an opaque NIC/GPU endpoint address.
	Addr = flow.Addr
	// Pair is an unordered endpoint pair.
	Pair = flow.Pair
	// SwitchID identifies a fabric switch.
	SwitchID = flow.SwitchID

	// Topology is the physical fabric model.
	Topology = topology.Topology
	// TopologySpec parameterizes a fabric.
	TopologySpec = topology.Spec
	// NodeID identifies a physical server.
	NodeID = topology.NodeID

	// JobCluster is a recognized training job (phase 1 output).
	JobCluster = jobrec.Cluster
	// JobID is the monitor's stable cross-window job identity.
	JobID = jobrec.JobID
	// JobRegistryConfig tunes cross-window job identity matching.
	JobRegistryConfig = jobrec.RegistryConfig
	// PairType is an inferred communication type (phase 2 output).
	PairType = parallel.Type
	// Timeline is a reconstructed per-rank schedule (phase 3 output).
	Timeline = timeline.Timeline
	// TimelineStep is one reconstructed training step.
	TimelineStep = timeline.Step
	// TimelineEvent is one communication event on a timeline.
	TimelineEvent = timeline.Event
	// Alert is a diagnosis finding (phase 4 output).
	Alert = diagnose.Alert
	// AlertKind classifies alerts.
	AlertKind = diagnose.AlertKind
	// SwitchPoint is one bucket of a per-switch DP bandwidth series.
	SwitchPoint = diagnose.SwitchPoint
	// Incident is the monitor's cross-window continuity view of one
	// anomaly (first-seen / still-firing).
	Incident = diagnose.Incident
	// IncidentKey identifies one logical anomaly across windows.
	IncidentKey = diagnose.IncidentKey
	// IncidentConfig tunes the monitor's chronic-baseline classification
	// (WithChronicSuppression).
	IncidentConfig = diagnose.IncidentConfig
	// SuspectTrackerConfig tunes cross-window suspect continuity and
	// fusion (localize.NewTracker).
	SuspectTrackerConfig = localize.TrackerConfig
	// Suspect is one ranked root-cause candidate of a window's alerts
	// (Report.Suspects, produced WithLocalization).
	Suspect = localize.Suspect
	// SuspectComponent identifies the fabric element a suspect names:
	// a switch, an inter-switch link or a host NIC.
	SuspectComponent = localize.Component
	// SuspectComponentKind classifies suspect components.
	SuspectComponentKind = localize.ComponentKind
	// LocalizationConfig tunes root-cause localization.
	LocalizationConfig = localize.Config

	// Scenario specifies a platform simulation.
	Scenario = platform.Scenario
	// SimResult is the output of Simulate.
	SimResult = platform.Result
	// JobPlan is a compact tenant-job request for PlanJobs.
	JobPlan = platform.JobPlan
	// JobConfig fully describes a simulated training job.
	JobConfig = trainsim.JobConfig
	// CommStyle selects ZeRO or all-reduce data parallelism.
	CommStyle = trainsim.CommStyle
	// ModelSpec describes a transformer model.
	ModelSpec = model.Spec
	// NetConfig configures the fluid network simulator.
	NetConfig = netsim.Config
	// FaultSchedule is a set of injected anomalies.
	FaultSchedule = faults.Schedule
	// Fault is one injected anomaly.
	Fault = faults.Fault
	// GroundTruth is the simulation's reference record for scoring.
	GroundTruth = truth.Platform

	// TraceArchive reads a binary trace archive recorded with
	// WithArchive (or an erspan capture). Open with OpenTraceArchive.
	TraceArchive = archive.Reader
	// TraceArchiveMeta is the window geometry a trace was recorded with.
	TraceArchiveMeta = archive.Meta
	// TraceArchiveSegment locates one archived window.
	TraceArchiveSegment = archive.Segment
	// TraceRecoveryReport describes what a salvage scan of a torn archive
	// kept and discarded (RecoverTraceArchive).
	TraceRecoveryReport = archive.RecoveryReport

	// CollectorConfig parameterizes the simulated collection pipeline's
	// noise (Scenario.Collector): loss, duplication, jitter, aggregation
	// and per-switch mirror blackouts.
	CollectorConfig = erspan.Config
	// CollectorBlackout is one switch mirror outage in a CollectorConfig.
	CollectorBlackout = erspan.Blackout
)

// Re-exported enum values.
const (
	TypePP = parallel.TypePP
	TypeDP = parallel.TypeDP

	AlertCrossStep       = diagnose.AlertCrossStep
	AlertCrossGroup      = diagnose.AlertCrossGroup
	AlertSwitchFlowCount = diagnose.AlertSwitchFlowCount
	AlertSwitchBandwidth = diagnose.AlertSwitchBandwidth

	ComponentSwitch = localize.ComponentSwitch
	ComponentLink   = localize.ComponentLink
	ComponentHost   = localize.ComponentHost

	StyleZeRO      = trainsim.StyleZeRO
	StyleAllReduce = trainsim.StyleAllReduce

	FaultSwitchDegrade = faults.KindSwitchDegrade
	FaultLinkDegrade   = faults.KindLinkDegrade
	FaultRankSlowdown  = faults.KindRankSlowdown
)

// Predefined model specs (LLaMA-family sizes).
var (
	Llama7B  = model.Llama7B
	Llama13B = model.Llama13B
	Llama33B = model.Llama33B
	Llama70B = model.Llama70B
)

// NewTopology builds a fabric from a spec.
func NewTopology(spec TopologySpec) (*Topology, error) { return topology.New(spec) }

// ReadTopology loads a fabric spec written with Topology.WriteJSON.
func ReadTopology(r io.Reader) (*Topology, error) { return topology.ReadJSON(r) }

// Simulate runs a platform scenario and returns flows plus ground truth.
func Simulate(s Scenario) (*SimResult, error) { return platform.Run(s) }

// PlanJobs expands compact job plans into validated job configs.
func PlanJobs(spec TopologySpec, plans []JobPlan, seed int64) ([]JobConfig, error) {
	return platform.PlanJobs(spec, plans, seed)
}

// NewFlowFrame builds the columnar frame of one flow window. The input is
// not modified and need not be sorted.
func NewFlowFrame(records []FlowRecord) *FlowFrame { return flow.NewFrame(records) }

// ReadFlowsCSV / WriteFlowsCSV read and write the collector CSV format.
func ReadFlowsCSV(r io.Reader) ([]FlowRecord, error)  { return flow.ReadCSV(r) }
func WriteFlowsCSV(w io.Writer, f []FlowRecord) error { return flow.WriteCSV(w, f) }

// ReadFlowsJSONL / WriteFlowsJSONL read and write the JSONL flow format.
func ReadFlowsJSONL(r io.Reader) ([]FlowRecord, error)  { return flow.ReadJSONL(r) }
func WriteFlowsJSONL(w io.Writer, f []FlowRecord) error { return flow.WriteJSONL(w, f) }

// ReadFlowFrame / WriteFlowFrame read and write one frame in the binary
// columnar layout — the persistence form the trace archive stores, decoded
// without text parsing or re-sorting.
func ReadFlowFrame(r io.Reader) (*FlowFrame, error)           { return flow.ReadFrame(r) }
func WriteFlowFrame(w io.Writer, f *FlowFrame) (int64, error) { return f.WriteTo(w) }

// OpenTraceArchive opens a binary trace archive recorded by a Monitor
// Stream session with WithArchive. r must cover the whole archive (size
// bytes); segments come back in event-time order, ready to replay through
// a fresh monitor session anchored at the archive's recorded grid origin
// (WithAnchor + TraceArchive.Anchor).
func OpenTraceArchive(r io.ReaderAt, size int64) (*TraceArchive, error) {
	return archive.OpenReader(r, size)
}

// RecoverTraceArchive opens a trace archive leniently: a clean archive
// opens strictly, while an unclosed or torn one has its intact prefix
// segments salvaged — every fully-written, checksum-valid segment up to
// the first corruption — with the report saying what was kept and what
// was lost. A salvaged prefix replays bit-identically to the same windows
// of the uninterrupted session (the replay grid anchor is reconstructed
// from the first salvaged window).
func RecoverTraceArchive(r io.ReaderAt, size int64) (*TraceArchive, *TraceRecoveryReport, error) {
	return archive.OpenReaderRecovering(r, size)
}
