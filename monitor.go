package llmprism

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/llmprism/llmprism/internal/archive"
	"github.com/llmprism/llmprism/internal/bocd"
	"github.com/llmprism/llmprism/internal/checkpoint"
	"github.com/llmprism/llmprism/internal/core/diagnose"
	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/core/localize"
	"github.com/llmprism/llmprism/internal/flow"
	"github.com/llmprism/llmprism/internal/stream"
)

// WindowInfo locates a monitor report on the window grid: window Seq
// covers records whose start time falls in [Start, End). It is the zero
// value on reports produced by Analyze/AnalyzeFrame directly.
type WindowInfo struct {
	Seq        int
	Start, End time.Time
}

// Monitor performs continuous windowed analysis over an incoming flow
// record stream, the deployment mode of the paper: the collector feeds
// records as they are exported and every completed window is analyzed,
// yielding reports (and their alerts) in window order. Windows are cut on
// a grid anchored at the first record: width Window() wide, advancing by
// the hop (WithHop; default tumbling), closing once the event-time
// watermark — newest record start minus the allowed lateness
// (WithLateness) — passes their end. Completed windows that held no
// records still yield an (empty) report carrying their bounds, so report
// sequence numbers line up with wall-clock windows.
//
// Two ingestion paths share the same analysis, window grid and continuity
// state:
//
//   - Feed/FeedContext buffer records and analyze each completed window
//     synchronously before returning — the historical, and simplest, mode.
//     It requires tumbling windows (hop == width).
//   - Stream opens a pipelined session: records append into per-window
//     columnar builders as they arrive, closed windows are analyzed
//     asynchronously on the analyzer's worker pool while newer records
//     keep ingesting, and reports come back strictly in window order,
//     bit-identical to what the Feed loop produces for the same in-order
//     record stream. Records later than the allowed lateness are dropped
//     and counted instead of misfiled.
//
// Reports gain cross-window continuity: a job registry matches each
// window's recognized endpoint sets against previous windows and stamps
// stable JobReport.JobID values, per-job change-point detectors are reused
// across windows via Reset (never rebuilt), and Report.Incidents carries
// first-seen/still-firing state per anomaly so a persistently slow rank is
// one ongoing incident rather than one alert pile per window. Two options
// make the feed fully incident-centric: WithChronicSuppression classifies
// anomalies that fire from the monitor's first windows and never resolve
// as chronic — platform steady state, not events — removing them from the
// alert surface and from localization evidence while keeping their
// incidents visible; and with localization enabled, Report.FusedSuspects
// ranks components by suspiciousness fused across the windows they stay
// suspect, so one persistent root cause rises above per-window noise.
//
// Monitor is not safe for concurrent use; feed it from one goroutine, and
// use either the Feed loop or one Stream session — not both — per
// Monitor.
type Monitor struct {
	analyzer *Analyzer
	mapper   jobrec.ServerMapper
	cfg      monitorConfig

	// Legacy feed path state: buffer sorted by (start, id); next is the
	// start of the next grid window to emit (zero until the first record
	// anchors the grid).
	buf  []flow.Record
	next time.Time

	// Continuity state shared by both ingestion paths, driven strictly in
	// window order.
	seq       int
	registry  *jobrec.Registry
	incidents *diagnose.IncidentTracker
	// suspects carries localization continuity (non-nil only when the
	// analyzer localizes): a component staying suspect across windows
	// keeps its first-seen time and windows count, and accumulates the
	// fused cross-window score behind Report.FusedSuspects.
	suspects *localize.Tracker
	// relocalize moves localization from the per-window analysis into
	// annotate (set when chronic suppression and localization are both on),
	// so chronic incidents — known only to the monitor's continuity state —
	// can be excluded from the localization evidence. locCfg is the
	// localization config the analyzer would have used.
	relocalize bool
	locCfg     localize.Config
	// covRecent is the coverage guard's rolling baseline: row counts of
	// the most recent healthy windows (non-nil state only when
	// WithCoverageGuard is on).
	covRecent []int64
	// resume holds the checkpoint this monitor was rebuilt from (nil for
	// a fresh session); Stream uses it to restore the grid position.
	resume *checkpoint.Checkpoint

	streaming bool
}

type monitorConfig struct {
	window      time.Duration
	hop         time.Duration
	lateness    time.Duration
	depth       int
	registry    jobrec.RegistryConfig
	archive     io.Writer
	archiveSink func(ArchiveMeta) (ArchiveSink, error)
	anchor      time.Time
	suppress    bool
	incident    diagnose.IncidentConfig
	checkpoint  string
	coverage    CoverageConfig
	coverageOn  bool
}

// MonitorOption customizes a Monitor.
type MonitorOption func(*monitorConfig)

// WithHop sets the window stride. The default equals the window width
// (tumbling windows); a smaller hop yields overlapping windows — a record
// then belongs to every window covering its start time, including the
// leading partial phase windows that begin before the first record — and
// only the Stream path supports them.
func WithHop(d time.Duration) MonitorOption {
	return func(c *monitorConfig) { c.hop = d }
}

// WithLateness sets the allowed out-of-orderness: a window closes only
// once a record this much past its end has been seen, so records up to the
// lateness bound out of order still land in the right window. Stream drops
// (and counts) records later than the bound; the Feed path, which buffers,
// misfiles them into the oldest open window. Default 0.
func WithLateness(d time.Duration) MonitorOption {
	return func(c *monitorConfig) { c.lateness = d }
}

// WithPipelineDepth bounds how many closed windows a Stream session
// analyzes concurrently; ingestion continues while they run. 1 disables
// pipelining; the default is 2 (window k+1 ingests while k analyzes).
func WithPipelineDepth(n int) MonitorOption {
	return func(c *monitorConfig) { c.depth = n }
}

// WithJobRegistry tunes cross-window job identity matching.
func WithJobRegistry(cfg jobrec.RegistryConfig) MonitorOption {
	return func(c *monitorConfig) { c.registry = cfg }
}

// WithChronicSuppression makes the monitor classify persistent baseline
// anomalies as chronic and suppress them from the alert surface. An
// incident that fires from (effectively) the first observed window and
// keeps firing is a property of the deployment — a structurally slow
// trailing-rail DP group, a permanently oversubscribed link — not an
// event worth re-alerting every window. Once an incident turns chronic
// (see IncidentConfig), its alerts are removed from JobReport.Alerts and
// Report.SwitchAlerts, and it is excluded from the localization evidence,
// so localization ranks genuine faults instead of the deployment's known
// baseline. The incident itself stays visible in Report.Incidents with
// Chronic set. The zero cfg applies the documented defaults.
func WithChronicSuppression(cfg diagnose.IncidentConfig) MonitorOption {
	return func(c *monitorConfig) {
		c.suppress = true
		c.incident = cfg
	}
}

// WithArchive makes the monitor's Stream session record every completed
// window — its columnar frame, window bounds and the event-time grid
// anchor — into a binary trace archive written to w. The monitor stamps
// its own window geometry into the archive header, so the `llmprism
// replay` path (Monitor.Stream over each archived window's records, grid
// pre-anchored via WithAnchor) reproduces the recorded reports bit for
// bit. MonitorStream.Close finalizes the archive's manifest; the caller
// still owns (and closes) w itself. Only the Stream path archives; Feed
// ignores the option.
func WithArchive(w io.Writer) MonitorOption {
	return func(c *monitorConfig) { c.archive = w }
}

// ArchiveMeta is the window geometry a Stream session hands its archive
// sink at open time — the geometry the sink must stamp into whatever
// container it writes.
type ArchiveMeta struct {
	Width, Hop, Lateness time.Duration
}

// ArchiveSink persists a Stream session's released windows. Append
// receives every window in emission (seq) order with its bounds and
// already-built columnar frame; SetAnchor is called with the session's
// event-time grid origin before each Append (and at Close), so a sink that
// rotates into multiple containers can stamp the anchor on each; Close
// finalizes the container. archive.Writer and archive.StoreWriter both
// satisfy it.
type ArchiveSink interface {
	Append(seq int, start, end time.Time, f *FlowFrame) error
	SetAnchor(t time.Time)
	Close() error
}

// WithArchiveSink makes the Stream session record every completed window
// through a caller-built sink — the generalization of WithArchive that the
// session layer uses to write rotating multi-segment stores. The factory
// runs when Stream opens, receiving the session's resolved window geometry
// (which a Monitor only knows after NewMonitor/ResumeMonitor has applied
// every option). It takes precedence over WithArchive when both are set.
func WithArchiveSink(open func(ArchiveMeta) (ArchiveSink, error)) MonitorOption {
	return func(c *monitorConfig) { c.archiveSink = open }
}

// WithAnchor pre-sets the Stream session's event-time grid origin instead
// of anchoring at the earliest record of the first push. Replay uses it to
// restore a recorded session's exact window grid (archives carry the
// anchor); it is not needed for live collection.
func WithAnchor(t time.Time) MonitorOption {
	return func(c *monitorConfig) { c.anchor = t }
}

// WithCheckpoint makes the monitor's Stream session persist its continuity
// state — grid position, job registry, incident tracker, suspect tracker,
// coverage baseline — to path after every released window, atomically
// (temp file + rename; a crash leaves the previous checkpoint, never a
// torn one). A monitor rebuilt from the file with ResumeMonitor continues
// the session at the next window with the same JobIDs, incident first-seen
// times and fused suspect scores the uninterrupted session would have
// produced. Only the Stream path checkpoints; Feed ignores the option.
func WithCheckpoint(path string) MonitorOption {
	return func(c *monitorConfig) { c.checkpoint = path }
}

// CoverageConfig tunes the monitor's collection-coverage guard.
type CoverageConfig struct {
	// BaselineWindows is the length of the rolling baseline: the row
	// counts of this many recent healthy windows define the expected
	// per-window flow volume. Default 8.
	BaselineWindows int
	// MinBaseline is how many healthy windows must accumulate before the
	// guard starts classifying (earlier windows pass unjudged). Default 3.
	MinBaseline int
	// DegradedBelow marks a window degraded when its row count falls
	// below this fraction of the baseline mean. Default 0.5.
	DegradedBelow float64
}

func (c CoverageConfig) withDefaults() CoverageConfig {
	if c.BaselineWindows <= 0 {
		c.BaselineWindows = 8
	}
	if c.MinBaseline <= 0 {
		c.MinBaseline = 3
	}
	if c.DegradedBelow <= 0 || c.DegradedBelow >= 1 {
		c.DegradedBelow = 0.5
	}
	return c
}

// Coverage is one window's collection-coverage signal (see Report).
type Coverage struct {
	// Rows is the window's observed flow record count.
	Rows int
	// Baseline is the rolling mean row count of recent healthy windows;
	// 0 until MinBaseline healthy windows have accumulated.
	Baseline float64
	// Ratio is Rows/Baseline (0 while no baseline is established).
	Ratio float64
	// Degraded marks a window whose coverage fell below DegradedBelow of
	// baseline — including a fully empty window once a baseline exists.
	Degraded bool
}

// WithCoverageGuard makes the monitor compare every window's observed flow
// volume against a rolling baseline of recent healthy windows and stamp
// the result on Report.Coverage. A window whose volume collapses below the
// configured fraction of baseline — a collector outage, a switch mirror
// blackout — is marked degraded: its alerts are withheld and the
// continuity trackers (job registry, incidents, suspects) are frozen for
// the window, because diagnoses drawn from thinned evidence are false
// alarms waiting to happen, not detections. Healthy windows refresh the
// baseline; degraded ones do not poison it. The zero cfg applies the
// documented defaults.
func WithCoverageGuard(cfg CoverageConfig) MonitorOption {
	return func(c *monitorConfig) {
		c.coverageOn = true
		c.coverage = cfg.withDefaults()
	}
}

// NewMonitor returns a Monitor that analyzes consecutive windows of the
// given width (default 1 minute, the paper's operating point). The
// analyzer's change-point detectors are pooled across the monitor's
// windows — reused via Reset instead of rebuilt — which never changes
// results.
func NewMonitor(analyzer *Analyzer, mapper jobrec.ServerMapper, window time.Duration, opts ...MonitorOption) (*Monitor, error) {
	if analyzer == nil {
		return nil, fmt.Errorf("llmprism: nil analyzer")
	}
	if mapper == nil {
		return nil, fmt.Errorf("llmprism: nil server mapper")
	}
	if window <= 0 {
		window = time.Minute
	}
	cfg := monitorConfig{window: window, hop: window, depth: 2}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.hop <= 0 {
		cfg.hop = window
	}
	if cfg.hop > cfg.window {
		return nil, fmt.Errorf("llmprism: hop %v exceeds window %v", cfg.hop, cfg.window)
	}
	if cfg.lateness < 0 {
		return nil, fmt.Errorf("llmprism: negative lateness %v", cfg.lateness)
	}
	if cfg.depth <= 0 {
		cfg.depth = 2
	}
	// Private analyzer copy with pooled detectors: every window's
	// SplitTimes passes draw Reset detectors from these pools instead of
	// allocating fresh ones.
	acfg := analyzer.cfg
	acfg.Parallel.Split.Detectors = bocd.NewPool(acfg.Parallel.Split.BOCD)
	acfg.Timeline.Split.Detectors = bocd.NewPool(acfg.Timeline.Split.BOCD)
	m := &Monitor{
		mapper:    mapper,
		cfg:       cfg,
		registry:  jobrec.NewRegistry(cfg.registry),
		incidents: diagnose.NewIncidentTracker(cfg.incident),
	}
	if acfg.Localize {
		m.suspects = localize.NewTracker(localize.TrackerConfig{})
		if cfg.suppress {
			// Chronic suppression must filter the localization evidence,
			// and chronic state lives in the monitor's in-order continuity
			// path — so localization moves out of the (parallel) analysis
			// into annotate. Same merged report, same in-order execution,
			// bit-identical suspects.
			m.relocalize = true
			m.locCfg = acfg.Localization
			acfg.Localize = false
		}
	}
	m.analyzer = &Analyzer{cfg: acfg}
	return m, nil
}

// ResumeMonitor rebuilds a monitor from a session checkpoint written by
// WithCheckpoint (or MonitorStream.Checkpoint): the window geometry comes
// from the checkpoint, the continuity trackers are restored, and the next
// Stream session continues the interrupted one — window Seq, JobIDs,
// incident first-seen times and fused suspect scores all pick up exactly
// where the checkpoint left them. The analyzer and options must match the
// original session's (a checkpoint restores state, not configuration);
// mismatched localization or coverage-guard settings are rejected. The
// feeder must then re-push, in the original order, every record whose
// start falls at or after ResumeFrom — the resumed reports are
// bit-identical to the uninterrupted session's from that window on.
func ResumeMonitor(analyzer *Analyzer, mapper jobrec.ServerMapper, r io.Reader, opts ...MonitorOption) (*Monitor, error) {
	ck, err := checkpoint.Read(r)
	if err != nil {
		return nil, fmt.Errorf("llmprism: resume: %w", err)
	}
	// The checkpoint's geometry is authoritative: append its hop/lateness
	// after the caller's options so a divergent WithHop/WithLateness cannot
	// misalign the restored grid.
	opts = append(append([]MonitorOption(nil), opts...), WithHop(ck.Hop), WithLateness(ck.Lateness))
	m, err := NewMonitor(analyzer, mapper, ck.Width, opts...)
	if err != nil {
		return nil, err
	}
	if (ck.Suspects != nil) != (m.suspects != nil) {
		return nil, fmt.Errorf("llmprism: resume: checkpoint localization state (%t) does not match analyzer (%t)",
			ck.Suspects != nil, m.suspects != nil)
	}
	if (ck.Coverage != nil) != m.cfg.coverageOn {
		return nil, fmt.Errorf("llmprism: resume: checkpoint coverage guard (%t) does not match options (%t)",
			ck.Coverage != nil, m.cfg.coverageOn)
	}
	m.seq = ck.Engine.Seq
	m.registry.Restore(ck.Registry)
	m.incidents.Restore(ck.Incidents)
	if ck.Suspects != nil {
		m.suspects.Restore(*ck.Suspects)
	}
	if ck.Coverage != nil {
		m.covRecent = append([]int64(nil), ck.Coverage.Recent...)
	}
	m.resume = ck
	return m, nil
}

// ResumeFrom returns the start of the first window this resumed monitor's
// Stream session will emit — the boundary the feeder replays records from
// (every record at or after it, in the original order). It is the zero
// time on a monitor not built by ResumeMonitor.
func (m *Monitor) ResumeFrom() time.Time {
	if m.resume == nil {
		return time.Time{}
	}
	return m.resume.ResumeFrom()
}

// ResumeSeq returns the seq of the first window a resumed monitor's Stream
// session will emit (0 on a fresh monitor). An archive sink resuming a
// partially-written store salvages strictly below this boundary: every
// earlier window is checkpointed and must already be archived, every
// window at or past it will be re-emitted — and re-archived — by the
// resumed session.
func (m *Monitor) ResumeSeq() int {
	if m.resume == nil {
		return 0
	}
	return m.resume.Engine.Seq
}

// Window returns the monitor's window width.
func (m *Monitor) Window() time.Duration { return m.cfg.window }

// Hop returns the monitor's window stride.
func (m *Monitor) Hop() time.Duration { return m.cfg.hop }

// Lateness returns the monitor's allowed out-of-orderness.
func (m *Monitor) Lateness() time.Duration { return m.cfg.lateness }

// Pending returns the number of records buffered by the Feed path.
func (m *Monitor) Pending() int { return len(m.buf) }

// Feed ingests records (in roughly chronological order) and analyzes every
// window that the newest record closes. It returns one report per
// completed window, oldest first — including empty windows, which carry
// their bounds but no jobs. Feed is FeedContext with a background context.
func (m *Monitor) Feed(records []FlowRecord) ([]*Report, error) {
	return m.FeedContext(context.Background(), records)
}

// FeedContext is Feed with cancellation: each completed window is analyzed
// through the analyzer's worker pool via AnalyzeContext, and a canceled
// ctx stops between (and inside) windows, returning the reports completed
// so far alongside the error. Records of windows already analyzed are
// consumed; the interrupted window's records stay buffered. Only the newly
// fed batch is sorted — it is merged into the already-sorted buffer rather
// than re-sorting everything. FeedContext requires tumbling windows; use
// Stream for overlapping ones.
func (m *Monitor) FeedContext(ctx context.Context, records []FlowRecord) ([]*Report, error) {
	if m.cfg.hop != m.cfg.window {
		return nil, fmt.Errorf("llmprism: Feed supports only tumbling windows (hop %v != window %v); use Stream", m.cfg.hop, m.cfg.window)
	}
	if m.streaming {
		return nil, fmt.Errorf("llmprism: monitor has an open Stream session; do not mix it with Feed")
	}
	if m.resume != nil {
		return nil, fmt.Errorf("llmprism: a resumed monitor supports only Stream")
	}
	if len(records) == 0 {
		return nil, nil
	}
	m.ingest(records)
	if m.next.IsZero() {
		// UTC-normalized, exactly like the stream engine's grid, so the
		// stamped window bounds are identical on both paths whatever
		// location the input records carry.
		m.next = m.buf[0].Start.UTC()
	}

	var reports []*Report
	newest := m.buf[len(m.buf)-1].Start
	for newest.Sub(m.next) >= m.cfg.window+m.cfg.lateness {
		m.skipEmptyRun(newest)
		if newest.Sub(m.next) < m.cfg.window+m.cfg.lateness {
			break
		}
		report, err := m.closeWindow(ctx)
		if err != nil {
			return reports, fmt.Errorf("llmprism: monitor window at %v: %w", m.next, err)
		}
		reports = append(reports, report)
	}
	return reports, nil
}

// closeWindow analyzes and consumes the buffered records of the next grid
// window [m.next, m.next+window), advancing the grid. FeedContext and
// FlushContext share it so the cut predicate and bounds stamping cannot
// drift apart — the stream-engine equivalence depends on both.
func (m *Monitor) closeWindow(ctx context.Context) (*Report, error) {
	end := m.next.Add(m.cfg.window)
	cut := sort.Search(len(m.buf), func(i int) bool { return !m.buf[i].Start.Before(end) })
	report, err := m.analyzeWindow(ctx, m.buf[:cut], m.next, end)
	if err != nil {
		return nil, err
	}
	m.buf = m.buf[cut:]
	m.next = end
	return report, nil
}

// skipEmptyRun jumps the grid over a run of empty windows longer than
// stream.DefaultMaxEmptyRun slots — the exact mirror of the engine's
// guard, so a single corrupt far-future timestamp cannot make the Feed
// path emit one empty report per grid slot across the gap, and Feed stays
// equivalent to Stream even then. Like the engine's push-time jump, the
// target is capped at the first window the watermark (newest − lateness)
// cannot close yet when a newest bound is given; FlushContext passes the
// zero time to jump all the way to the earliest buffered record's window,
// matching the engine's Flush. Shorter runs still emit their empty
// reports.
func (m *Monitor) skipEmptyRun(newest time.Time) {
	if len(m.buf) == 0 {
		return
	}
	earliest := m.buf[0].Start
	if earliest.Before(m.next) {
		return
	}
	w := int64(m.cfg.window)
	slots := stream.FloorDiv(int64(earliest.Sub(m.next)), w)
	if !newest.IsZero() {
		closable := stream.FloorDiv(int64(newest.Sub(m.next)-m.cfg.lateness)-w, w) + 1
		if closable < slots {
			slots = closable
		}
	}
	if slots > stream.DefaultMaxEmptyRun {
		m.next = m.next.Add(time.Duration(slots) * m.cfg.window)
	}
}

// ingest merges the batch into the sorted buffer: the batch alone is
// sorted (O(m log m)) and the two sorted runs merged in place from the
// back (O(n+m)), replacing the historical full-buffer re-sort on every
// feed. In-order arrival skips the merge entirely.
func (m *Monitor) ingest(records []flow.Record) {
	n := len(m.buf)
	m.buf = append(m.buf, records...)
	batch := m.buf[n:]
	flow.SortByStart(batch)
	if n == 0 || !recordBefore(&batch[0], &m.buf[n-1]) {
		return
	}
	// Backward merge of buf[:n] and the staged batch into the grown
	// buffer; staging keeps batch elements readable while the tail is
	// overwritten.
	tmp := append([]flow.Record(nil), batch...)
	i, j := n-1, len(tmp)-1
	for k := len(m.buf) - 1; j >= 0; k-- {
		if i >= 0 && recordBefore(&tmp[j], &m.buf[i]) {
			m.buf[k] = m.buf[i]
			i--
		} else {
			m.buf[k] = tmp[j]
			j--
		}
	}
}

// recordBefore is the (start, id) order SortByStart establishes.
func recordBefore(a, b *flow.Record) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	return a.ID < b.ID
}

// analyzeWindow analyzes one completed window's records (possibly none)
// and stamps window bounds plus cross-window continuity. It must be called
// in window order.
func (m *Monitor) analyzeWindow(ctx context.Context, recs []flow.Record, start, end time.Time) (*Report, error) {
	var report *Report
	if len(recs) == 0 {
		report = &Report{}
	} else {
		var err error
		report, err = m.analyzer.AnalyzeContext(ctx, recs, m.mapper)
		if err != nil {
			return nil, err
		}
	}
	report.Window = WindowInfo{Seq: m.seq, Start: start, End: end}
	m.seq++
	m.annotate(report, len(recs))
	return report, nil
}

// annotate stamps cross-window continuity onto one report: stable JobIDs
// from the registry, the incident view of the window's alerts (chronic
// baseline anomalies suppressed from the alert surface and the
// localization evidence when WithChronicSuppression is on), and the fused
// cross-window suspect ranking. rows is the window's record count, the
// coverage guard's input. Reports must be annotated in window order; both
// ingestion paths guarantee that.
func (m *Monitor) annotate(r *Report, rows int) {
	if m.cfg.coverageOn {
		r.Coverage = m.observeCoverage(rows)
		if r.Coverage.Degraded {
			// Thinned evidence must not fire alerts or corrupt continuity
			// state: withhold the window's alert surface and freeze every
			// tracker — no job matching (expiry clocks would tick against
			// artificially shrunken clusters), no incident observation
			// (open incidents would wrongly resolve, and chronic state is
			// unrecoverable once an incident reopens post-baseline), no
			// suspect scoring. The fused ranking still reflects the
			// evidence accumulated before the outage.
			for i := range r.Jobs {
				r.Jobs[i].Alerts = nil
			}
			r.SwitchAlerts = nil
			r.Suspects = nil
			if m.suspects != nil {
				r.FusedSuspects = m.suspects.Fused()
			}
			return
		}
	}
	clusters := make([]jobrec.Cluster, len(r.Jobs))
	for i := range r.Jobs {
		clusters[i] = r.Jobs[i].Cluster
	}
	ids := m.registry.Assign(r.Window.Seq, r.Window.Start, clusters)
	var alerts []diagnose.JobAlert
	for i := range r.Jobs {
		r.Jobs[i].JobID = ids[i]
		for _, a := range r.Jobs[i].Alerts {
			alerts = append(alerts, diagnose.JobAlert{Job: int(ids[i]), Alert: a})
		}
	}
	for _, a := range r.SwitchAlerts {
		alerts = append(alerts, diagnose.JobAlert{Alert: a})
	}
	r.Incidents = m.incidents.Observe(alerts)

	if m.cfg.suppress {
		chronic := make(map[diagnose.IncidentKey]bool)
		for _, inc := range r.Incidents {
			if inc.Chronic && inc.StillFiring {
				chronic[inc.Key] = true
			}
		}
		if m.relocalize {
			cfg := m.locCfg
			if len(chronic) > 0 {
				cfg.Filter = func(job int, a diagnose.Alert) bool {
					return !chronic[diagnose.KeyOf(job, a)]
				}
			}
			r.Suspects = localizeReport(r, cfg)
		}
		if len(chronic) > 0 {
			for i := range r.Jobs {
				r.Jobs[i].Alerts = dropChronic(r.Jobs[i].Alerts, int(ids[i]), chronic)
			}
			r.SwitchAlerts = dropChronic(r.SwitchAlerts, 0, chronic)
		}
	}
	if m.suspects != nil {
		m.suspects.Observe(r.Window.Start, r.Suspects)
		r.FusedSuspects = m.suspects.Fused()
	}
}

// observeCoverage classifies one window's record count against the
// rolling baseline and, for healthy non-empty windows, folds the count
// into the baseline.
func (m *Monitor) observeCoverage(rows int) Coverage {
	cov := Coverage{Rows: rows}
	if len(m.covRecent) >= m.cfg.coverage.MinBaseline {
		var sum int64
		for _, v := range m.covRecent {
			sum += v
		}
		cov.Baseline = float64(sum) / float64(len(m.covRecent))
		if cov.Baseline > 0 {
			cov.Ratio = float64(rows) / cov.Baseline
			cov.Degraded = cov.Ratio < m.cfg.coverage.DegradedBelow
		}
	}
	if !cov.Degraded && rows > 0 {
		m.covRecent = append(m.covRecent, int64(rows))
		if n := len(m.covRecent) - m.cfg.coverage.BaselineWindows; n > 0 {
			m.covRecent = append(m.covRecent[:0], m.covRecent[n:]...)
		}
	}
	return cov
}

// dropChronic filters a job's (or the fabric's, job 0) alerts in place,
// removing the ones whose incident key is chronic.
func dropChronic(alerts []diagnose.Alert, job int, chronic map[diagnose.IncidentKey]bool) []diagnose.Alert {
	kept := alerts[:0]
	for _, a := range alerts {
		if !chronic[diagnose.KeyOf(job, a)] {
			kept = append(kept, a)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	return kept
}

// Flush analyzes whatever remains in the Feed path's buffer, one report
// per grid window — with a lateness bound the remainder can span several
// windows, and each record must stay inside its window's stamped bounds.
// It returns nil when no records are buffered. Flush is FlushContext with
// a background context.
func (m *Monitor) Flush() ([]*Report, error) {
	return m.FlushContext(context.Background())
}

// FlushContext is Flush with cancellation. The buffer is consumed even on
// error, matching Flush's historical contract.
func (m *Monitor) FlushContext(ctx context.Context) ([]*Report, error) {
	var reports []*Report
	for len(m.buf) > 0 {
		m.skipEmptyRun(time.Time{})
		report, err := m.closeWindow(ctx)
		if err != nil {
			m.buf = nil
			m.next = time.Time{}
			return reports, fmt.Errorf("llmprism: monitor flush: %w", err)
		}
		reports = append(reports, report)
	}
	m.buf = nil
	m.next = time.Time{}
	return reports, nil
}

// Stream opens a pipelined streaming session over the monitor: records
// append straight into per-window columnar builders, closed windows
// analyze asynchronously (up to WithPipelineDepth at once) while newer
// records keep ingesting, and reports are released strictly in window
// order — bit-identical to the Feed loop's for the same in-order record
// stream. ctx bounds every analysis started by the session. A monitor
// supports one Stream session, which cannot be mixed with Feed: Stream
// refuses a monitor that has Feed-buffered records or an open session,
// and Feed refuses once a session exists.
func (m *Monitor) Stream(ctx context.Context) (*MonitorStream, error) {
	if m.streaming {
		return nil, fmt.Errorf("llmprism: monitor already has a Stream session")
	}
	if len(m.buf) > 0 || (m.seq > 0 && m.resume == nil) {
		return nil, fmt.Errorf("llmprism: monitor has Feed state (%d buffered records, %d windows emitted); use a fresh Monitor for streaming", len(m.buf), m.seq)
	}
	var sink ArchiveSink
	if m.cfg.archiveSink != nil {
		s, err := m.cfg.archiveSink(ArchiveMeta{
			Width:    m.cfg.window,
			Hop:      m.cfg.hop,
			Lateness: m.cfg.lateness,
		})
		if err != nil {
			return nil, fmt.Errorf("llmprism: open archive sink: %w", err)
		}
		sink = s
	} else if m.cfg.archive != nil {
		aw, err := archive.NewWriter(m.cfg.archive, archive.Meta{
			Width:    m.cfg.window,
			Hop:      m.cfg.hop,
			Lateness: m.cfg.lateness,
		})
		if err != nil {
			return nil, fmt.Errorf("llmprism: open archive sink: %w", err)
		}
		sink = aw
	}
	m.streaming = true
	scfg := stream.Config{
		Width:       m.cfg.window,
		Hop:         m.cfg.hop,
		Lateness:    m.cfg.lateness,
		MaxInFlight: m.cfg.depth,
		Anchor:      m.cfg.anchor,
	}
	s := &MonitorStream{m: m, ctx: ctx, sink: sink}
	if m.resume != nil {
		es := m.resume.Engine
		scfg.Resume = &es
		s.lastState = &es
	}
	s.eng = stream.New(scfg, func(ctx context.Context, _ stream.Window, f *flow.Frame) (*Report, error) {
		if f.Len() == 0 {
			return &Report{}, nil
		}
		return m.analyzer.AnalyzeFrameContext(ctx, f, m.mapper)
	})
	return s, nil
}

// MonitorStream is one streaming ingestion session. Drive it from a single
// goroutine: Push batches as the collector exports them, consume the
// reports each Push releases, and Close at end of stream. After an error
// the session is dead; every later call returns the same error.
type MonitorStream struct {
	m    *Monitor
	ctx  context.Context
	eng  *stream.Engine[*Report]
	sink ArchiveSink
	// lastState is the grid state as of the most recently released window
	// — what Checkpoint serializes (nil until the first release on a
	// fresh session; a resumed session starts from its checkpoint).
	lastState *stream.State
	err       error
	closed    bool
}

// Push ingests one batch of records — in any order; records up to the
// monitor's lateness out of order land in their correct windows — and
// returns every report that became ready, in window order. A report is
// ready once its window's analysis and those of all earlier windows have
// finished; Push never blocks waiting for analysis except to hold the
// pipeline-depth bound.
func (s *MonitorStream) Push(records []FlowRecord) ([]*Report, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, fmt.Errorf("llmprism: push on a closed monitor stream")
	}
	if err := s.eng.Push(s.ctx, records); err != nil {
		s.err = err
		return nil, err
	}
	return s.collect(s.eng.Ready())
}

// PushFrame ingests one already-columnar frame — the bulk counterpart of
// Push, used by archive replay (and, eventually, the daemon's LPF1 wire
// ingest) so a decoded window never materializes per-record structs. It is
// semantically Push(f.RecordsByStart()) — same windows, same late counts,
// bit-identical reports and archived frames — at a fraction of the
// allocations.
func (s *MonitorStream) PushFrame(f *FlowFrame) ([]*Report, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, fmt.Errorf("llmprism: push on a closed monitor stream")
	}
	if err := s.eng.PushFrame(s.ctx, f); err != nil {
		s.err = err
		return nil, err
	}
	return s.collect(s.eng.Ready())
}

// Close flushes every remaining window — partial trailing windows
// included — waits for in-flight analyses and returns the remaining
// reports in window order. With an archive sink configured it then stamps
// the grid anchor and finalizes the archive manifest (the underlying
// writer stays open; the caller owns it). The session stays usable only
// for Late and Pending afterwards.
func (s *MonitorStream) Close() ([]*Report, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.closed {
		return nil, fmt.Errorf("llmprism: monitor stream already closed")
	}
	s.closed = true
	results, err := s.eng.Flush(s.ctx)
	reports, cerr := s.collect(results)
	if cerr != nil {
		return reports, cerr
	}
	if err != nil {
		s.err = err
		return reports, err
	}
	if s.sink != nil {
		s.sink.SetAnchor(s.eng.Anchor())
		if err := s.sink.Close(); err != nil {
			s.err = fmt.Errorf("llmprism: finalize archive: %w", err)
			return reports, s.err
		}
	}
	return reports, nil
}

// collect stamps bounds and continuity onto completed windows, in order,
// and persists each window's frame when an archive sink is configured.
func (s *MonitorStream) collect(results []stream.Result[*Report]) ([]*Report, error) {
	var reports []*Report
	for _, res := range results {
		if res.Err != nil {
			s.err = fmt.Errorf("llmprism: monitor window at %v: %w", res.Window.Start, res.Err)
			return reports, s.err
		}
		r := res.Value
		r.Window = WindowInfo{Seq: res.Window.Seq, Start: res.Window.Start, End: res.Window.End}
		s.m.seq = res.Window.Seq + 1
		s.m.annotate(r, res.Rows)
		if s.sink != nil {
			// Anchor before every Append, not just at Close: a rotating
			// sink finalizes segments mid-session, and each must carry the
			// grid origin so any salvaged prefix replays on the same grid.
			s.sink.SetAnchor(s.eng.Anchor())
			if err := s.sink.Append(res.Window.Seq, res.Window.Start, res.Window.End, res.Frame); err != nil {
				s.err = fmt.Errorf("llmprism: archive window %d: %w", res.Window.Seq, err)
				return reports, s.err
			}
		}
		es := s.eng.StateAfter(res.Window)
		s.lastState = &es
		if s.m.cfg.checkpoint != "" {
			if err := checkpoint.Save(s.m.cfg.checkpoint, s.m.buildCheckpoint(es)); err != nil {
				s.err = fmt.Errorf("llmprism: checkpoint after window %d: %w", res.Window.Seq, err)
				return reports, s.err
			}
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// Checkpoint serializes the session's continuity state as of the most
// recently released window to w — the explicit counterpart of the
// WithCheckpoint file, for callers that manage persistence themselves. It
// errors while no window has been released yet (there is no boundary to
// checkpoint).
func (s *MonitorStream) Checkpoint(w io.Writer) error {
	if s.lastState == nil {
		return fmt.Errorf("llmprism: no window released yet; nothing to checkpoint")
	}
	return checkpoint.Write(w, s.m.buildCheckpoint(*s.lastState))
}

// buildCheckpoint assembles the continuity snapshot for the grid state es.
func (m *Monitor) buildCheckpoint(es stream.State) *checkpoint.Checkpoint {
	ck := &checkpoint.Checkpoint{
		Width:     m.cfg.window,
		Hop:       m.cfg.hop,
		Lateness:  m.cfg.lateness,
		Engine:    es,
		Registry:  m.registry.Snapshot(),
		Incidents: m.incidents.Snapshot(),
	}
	if m.suspects != nil {
		s := m.suspects.Snapshot()
		ck.Suspects = &s
	}
	if m.cfg.coverageOn {
		ck.Coverage = &checkpoint.CoverageState{Recent: append([]int64(nil), m.covRecent...)}
	}
	return ck
}

// Late returns how many record-to-window assignments were dropped because
// they arrived past the lateness bound (the batch Feed path would have
// misfiled them).
func (s *MonitorStream) Late() uint64 { return s.eng.Late() }

// Pending returns the number of record-to-window assignments buffered in
// open windows.
func (s *MonitorStream) Pending() int { return s.eng.Pending() }

// Watermark returns the session's current event-time watermark.
func (s *MonitorStream) Watermark() time.Time { return s.eng.Watermark() }
