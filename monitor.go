package llmprism

import (
	"context"
	"fmt"
	"time"

	"github.com/llmprism/llmprism/internal/core/jobrec"
	"github.com/llmprism/llmprism/internal/flow"
)

// Monitor performs continuous windowed analysis over an incoming flow
// record stream, the deployment mode of the paper: the collector feeds
// records as they are exported, and every completed window is analyzed
// independently, yielding reports (and their alerts) in order.
//
// Monitor is not safe for concurrent use; feed it from one goroutine. Each
// completed window is loaded once into a columnar flow.Frame and analyzed
// through the analyzer's worker pool (see WithWorkers), so per-window
// latency shrinks with cores while reports stay bit-identical to a
// sequential analyzer's.
type Monitor struct {
	analyzer *Analyzer
	mapper   jobrec.ServerMapper
	window   time.Duration
	buf      []flow.Record
	start    time.Time // current window start (zero until first record)
}

// NewMonitor returns a Monitor that analyzes consecutive windows of the
// given width (default 1 minute, the paper's operating point).
func NewMonitor(analyzer *Analyzer, mapper jobrec.ServerMapper, window time.Duration) (*Monitor, error) {
	if analyzer == nil {
		return nil, fmt.Errorf("llmprism: nil analyzer")
	}
	if mapper == nil {
		return nil, fmt.Errorf("llmprism: nil server mapper")
	}
	if window <= 0 {
		window = time.Minute
	}
	return &Monitor{analyzer: analyzer, mapper: mapper, window: window}, nil
}

// Window returns the monitor's window width.
func (m *Monitor) Window() time.Duration { return m.window }

// Pending returns the number of buffered records awaiting a full window.
func (m *Monitor) Pending() int { return len(m.buf) }

// Feed ingests records (in roughly chronological order) and analyzes every
// window that the newest record closes. It returns one report per
// completed window, oldest first. Feed is FeedContext with a background
// context.
func (m *Monitor) Feed(records []FlowRecord) ([]*Report, error) {
	return m.FeedContext(context.Background(), records)
}

// FeedContext is Feed with cancellation: each completed window is analyzed
// through the analyzer's worker pool via AnalyzeContext, and a canceled ctx
// stops between (and inside) windows, returning the reports completed so
// far alongside the error. Records of windows already analyzed are
// consumed; the interrupted window's records stay buffered.
func (m *Monitor) FeedContext(ctx context.Context, records []FlowRecord) ([]*Report, error) {
	if len(records) == 0 {
		return nil, nil
	}
	m.buf = append(m.buf, records...)
	flow.SortByStart(m.buf)
	if m.start.IsZero() {
		m.start = m.buf[0].Start
	}

	var reports []*Report
	newest := m.buf[len(m.buf)-1].Start
	for newest.Sub(m.start) >= m.window {
		end := m.start.Add(m.window)
		cut := 0
		for cut < len(m.buf) && m.buf[cut].Start.Before(end) {
			cut++
		}
		windowRecs := m.buf[:cut]
		if len(windowRecs) > 0 {
			report, err := m.analyzer.AnalyzeContext(ctx, windowRecs, m.mapper)
			if err != nil {
				return reports, fmt.Errorf("llmprism: monitor window at %v: %w", m.start, err)
			}
			reports = append(reports, report)
		}
		m.buf = m.buf[cut:]
		m.start = end
	}
	return reports, nil
}

// Flush analyzes whatever partial window remains. It returns nil when no
// records are buffered. Flush is FlushContext with a background context.
func (m *Monitor) Flush() (*Report, error) {
	return m.FlushContext(context.Background())
}

// FlushContext is Flush with cancellation. The buffer is consumed even on
// error, matching Flush's historical contract.
func (m *Monitor) FlushContext(ctx context.Context) (*Report, error) {
	if len(m.buf) == 0 {
		return nil, nil
	}
	report, err := m.analyzer.AnalyzeContext(ctx, m.buf, m.mapper)
	m.buf = nil
	m.start = time.Time{}
	if err != nil {
		return nil, fmt.Errorf("llmprism: monitor flush: %w", err)
	}
	return report, nil
}
