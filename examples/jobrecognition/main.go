// Job recognition (the paper's Fig. 3 scenario, scaled down): a
// multi-tenant cluster is a black box of GPUs; one minute of network flows
// reveals the cross-machine NIC-rail clusters, and the physical topology
// merges the rails of each job into complete job-level clusters.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/llmprism/llmprism"
)

func main() {
	// 48 servers (384 GPUs), six tenants of mixed size.
	topoSpec := llmprism.TopologySpec{Nodes: 48, NodesPerLeaf: 16, Spines: 4}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 12, TargetStep: 5 * time.Second},
		{Nodes: 10, TargetStep: 4 * time.Second},
		{Nodes: 8, TargetStep: 5 * time.Second},
		{Nodes: 8, TargetStep: 6 * time.Second},
		{Nodes: 6, TargetStep: 4 * time.Second},
		{Nodes: 4, TargetStep: 3 * time.Second},
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name:    "job-recognition",
		Topo:    topoSpec,
		Jobs:    jobs,
		Horizon: 90 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One minute of flows, as in the paper.
	window := res.Window(20*time.Second, time.Minute)
	fmt.Printf("analyzing %d flows from a 1-minute window over %d GPUs\n\n",
		len(window), res.Topo.Endpoints())

	// Phase 1: disjoint-set over flow endpoints → cross-machine clusters.
	cross := llmprism.CrossMachineClusters(window)
	fmt.Printf("phase 1 — %d cross-machine clusters (one per NIC rail per job):\n\n", len(cross))
	fmt.Println(llmprism.RenderClusterGrid(res.Topo, cross))

	// Phase 2: merge clusters with identical server sets.
	report, err := llmprism.New().Analyze(window, res.Topo)
	if err != nil {
		log.Fatal(err)
	}
	var clusters []llmprism.JobCluster
	var sets [][]llmprism.Addr
	for _, j := range report.Jobs {
		clusters = append(clusters, j.Cluster)
		sets = append(sets, j.Cluster.Endpoints)
	}
	fmt.Printf("phase 2 — %d job-level clusters after the topology merge:\n\n", len(clusters))
	fmt.Println(llmprism.RenderJobGrid(res.Topo, clusters))

	score := llmprism.ScoreRecognition(sets, res.Truth.Jobs)
	fmt.Printf("recognition: %d/%d exact, perfect=%v\n",
		score.ExactMatches, score.TrueJobs, score.Perfect())
}
