// Quickstart: simulate a small multi-tenant training platform, run the
// full LLMPrism pipeline on its flow records, and print what the platform
// operator learns — all through the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/llmprism/llmprism"
)

func main() {
	// A 24-server fabric (192 GPUs) hosting two tenant jobs.
	topoSpec := llmprism.TopologySpec{Nodes: 24, NodesPerLeaf: 8, Spines: 4}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 16, TargetStep: 3 * time.Second},
		{Nodes: 8, TargetStep: 2 * time.Second},
	}, 42)
	if err != nil {
		log.Fatal(err)
	}

	res, err := llmprism.Simulate(llmprism.Scenario{
		Name:    "quickstart",
		Topo:    topoSpec,
		Jobs:    jobs,
		Horizon: 30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d flow records from %d GPUs\n\n", len(res.Records), res.Topo.Endpoints())

	// The black-box analysis: only the collected flow frame + the
	// address→server map. (Analyze accepts a plain []FlowRecord too.)
	report, err := llmprism.New().AnalyzeFrame(res.Frame, res.Topo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recognized %d training jobs:\n", len(report.Jobs))
	for i, job := range report.Jobs {
		var dp, pp int
		for _, t := range job.Types {
			if t == llmprism.TypeDP {
				dp++
			} else {
				pp++
			}
		}
		var meanStep time.Duration
		var n int
		for _, tl := range job.Timelines {
			if d := llmprism.MeanStepDuration(tl); d > 0 {
				meanStep += d
				n++
			}
		}
		if n > 0 {
			meanStep /= time.Duration(n)
		}
		fmt.Printf("  job %d: %3d GPUs on %2d servers | %3d DP pairs, %3d PP pairs, %d DP groups | mean step %v\n",
			i, len(job.Cluster.Endpoints), len(job.Cluster.Servers),
			dp, pp, len(job.DPGroups), meanStep.Round(time.Millisecond))
	}

	fmt.Printf("\nalerts:\n%s", llmprism.RenderAlerts(report.Alerts()))

	// The simulation also carries ground truth — verify the analysis.
	var clusters [][]llmprism.Addr
	for _, job := range report.Jobs {
		clusters = append(clusters, job.Cluster.Endpoints)
	}
	score := llmprism.ScoreRecognition(clusters, res.Truth.Jobs)
	fmt.Printf("\nground truth check: %d/%d jobs recognized exactly (perfect=%v)\n",
		score.ExactMatches, score.TrueJobs, score.Perfect())
}
