// Switch-level congestion diagnosis (the paper's Fig. 5 scenario): two
// spine switches silently degrade mid-run; per-switch DP flow bandwidth
// aggregation exposes them and k-sigma detection raises alerts naming the
// exact switches.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/llmprism/llmprism"
)

func main() {
	// 3 servers per leaf so DP groups span leaves and use the spines.
	topoSpec := llmprism.TopologySpec{Nodes: 24, NodesPerLeaf: 3, Spines: 4}
	topo, err := llmprism.NewTopology(topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 8, TargetStep: 3 * time.Second},
		{Nodes: 8, TargetStep: 4 * time.Second},
		{Nodes: 8, TargetStep: 3 * time.Second},
	}, 21)
	if err != nil {
		log.Fatal(err)
	}

	badSpine := topo.SpineSwitch(2)
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name: "congestion",
		Topo: topoSpec,
		Jobs: jobs,
		Faults: llmprism.FaultSchedule{Faults: []llmprism.Fault{{
			Kind:   llmprism.FaultSwitchDegrade,
			Switch: badSpine,
			At:     40 * time.Second,
			Until:  2 * time.Minute,
			Factor: 0.07,
		}}},
		Horizon: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 2 minutes; %s degraded to 7%% capacity from 0:40\n\n", topo.SwitchName(badSpine))

	report, err := llmprism.New(llmprism.WithSwitchBucket(20*time.Second)).AnalyzeFrame(res.Frame, res.Topo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-switch mean DP flow bandwidth (Gb/s):")
	fmt.Println(llmprism.RenderSwitchSeries(report.SwitchSeries, res.Topo.SwitchName))

	fmt.Println("switch-level alerts:")
	fmt.Print(llmprism.RenderAlerts(report.SwitchAlerts))

	hit := false
	for _, a := range report.SwitchAlerts {
		if a.Kind == llmprism.AlertSwitchBandwidth && a.Switch == badSpine {
			hit = true
		}
	}
	fmt.Printf("\ndegraded switch correctly identified: %v\n", hit)
}
