// Timeline reconstruction (the paper's Fig. 4 scenario): reconstruct
// per-GPU training timelines of one job purely from its network flows,
// render them as swimlanes, and score the step boundaries against the
// simulator's ground truth (the stand-in for PyTorch Profiler reference
// data).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/llmprism/llmprism"
)

func main() {
	topoSpec := llmprism.TopologySpec{Nodes: 16, NodesPerLeaf: 8, Spines: 4}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 16, TargetStep: 5 * time.Second, Style: llmprism.StyleZeRO, StyleSet: true},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name:    "timelines",
		Topo:    topoSpec,
		Jobs:    jobs,
		Horizon: 60 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := llmprism.New().AnalyzeFrame(res.Frame, res.Topo)
	if err != nil {
		log.Fatal(err)
	}
	job := report.Jobs[0]

	// Rank selection: the first GPU of each of the first 8 servers.
	var ranks []llmprism.Addr
	for r, tl := range job.Timelines {
		if len(tl.Steps) > 1 {
			ranks = append(ranks, r)
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	if len(ranks) > 8 {
		ranks = ranks[:8]
	}
	if len(ranks) == 0 {
		log.Fatal("no timelines reconstructed")
	}

	ref := job.Timelines[ranks[0]]
	mean := llmprism.MeanStepDuration(ref)
	from := ref.Steps[len(ref.Steps)/2].Start
	fmt.Printf("reconstructed %d training steps per rank, mean step %v\n\n",
		len(ref.Steps), mean.Round(time.Millisecond))
	fmt.Println(llmprism.RenderTimelines(job.Timelines, ranks, from, from.Add(2*mean+mean/2), 110))

	// Per-step detail for one rank.
	fmt.Printf("steps of rank %v:\n", ranks[0])
	for _, s := range ref.Steps {
		fmt.Printf("  step %2d: %v  (DP segment %v, %d comm events)\n",
			s.Index, s.Duration().Round(time.Millisecond),
			s.DPDuration().Round(time.Millisecond), s.Events)
	}

	// Score against ground truth, as §V-C does against profiler data.
	score := llmprism.ScoreTimelines(job.Timelines, res.Truth.Epoch, res.Truth.Jobs[0])
	fmt.Printf("\nreconstruction error vs ground truth: mean %.3f%%, max %.3f%% over %d steps (paper: ≤ 0.3%%)\n",
		100*score.MeanRelError, 100*score.MaxRelError, score.MatchedSteps)
}
