// Online monitoring: a streaming Monitor session consumes the collector's
// flow stream — the paper's continuous deployment mode. Records append
// into per-window columnar builders as they arrive, closed windows analyze
// in a pipeline while newer records keep ingesting, and the job registry
// plus incident tracker carry identity across windows: a GPU that starts
// thermal throttling mid-run shows up as one ongoing incident with a
// first-seen time, not an unrelated alert pile per window.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/llmprism/llmprism"
)

func main() {
	topoSpec := llmprism.TopologySpec{Nodes: 16, NodesPerLeaf: 8, Spines: 4}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 16, TargetStep: 2 * time.Second},
	}, 5)
	if err != nil {
		log.Fatal(err)
	}

	// GPU 3 of server 1 throttles to quarter speed from 1:00 to 1:40.
	topo, err := llmprism.NewTopology(topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	victim := topo.AddrOf(1, 3)
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name: "online-monitor",
		Topo: topoSpec,
		Jobs: jobs,
		Faults: llmprism.FaultSchedule{Faults: []llmprism.Fault{{
			Kind:   llmprism.FaultRankSlowdown,
			Addr:   victim,
			At:     time.Minute,
			Until:  100 * time.Second,
			Factor: 4,
		}}},
		Horizon: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d records; GPU %v throttles 4x during 1:00-1:40\n\n", len(res.Records), victim)

	// 40-second windows put the throttling onset mid-window, so the
	// cross-step detector sees healthy steps first and the slowdown stands
	// out against them. 5 seconds of allowed lateness absorb out-of-order
	// collector exports; two windows may analyze while newer records
	// stream in.
	monitor, err := llmprism.NewMonitor(llmprism.New(), res.Topo, 40*time.Second,
		llmprism.WithLateness(5*time.Second),
		llmprism.WithPipelineDepth(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := monitor.Stream(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	show := func(reports []*llmprism.Report) {
		for _, report := range reports {
			alerts := report.Alerts()
			fmt.Printf("window %d [%s..%s): %d jobs, %d alerts\n",
				report.Window.Seq,
				report.Window.Start.Format(time.TimeOnly),
				report.Window.End.Format(time.TimeOnly),
				len(report.Jobs), len(alerts))
			for _, job := range report.Jobs {
				fmt.Printf("  job %d: %d GPUs\n", job.JobID, len(job.Cluster.Endpoints))
			}
			firing, resolved := 0, 0
			for _, inc := range report.Incidents {
				if inc.StillFiring {
					firing++
				} else {
					resolved++
				}
			}
			if len(report.Incidents) > 0 {
				fmt.Printf("  incidents: %d firing, %d resolved\n", firing, resolved)
			}
			shown := 0
			for _, inc := range report.Incidents {
				if shown == 3 {
					fmt.Printf("    … and %d more\n", len(report.Incidents)-shown)
					break
				}
				shown++
				if inc.StillFiring {
					fmt.Printf("    %v firing %d windows since %s: %s\n",
						inc.Key.Kind, inc.Windows, inc.FirstSeen.Format(time.TimeOnly), inc.Detail)
				} else {
					fmt.Printf("    %v resolved after %d windows\n", inc.Key.Kind, inc.Windows)
				}
			}
		}
	}

	// Replay the trace in 5-second batches, as a collector would export
	// it. Push never waits for window analysis beyond the pipeline depth;
	// each batch returns whatever reports became ready, in window order.
	const batch = 5 * time.Second
	for at := time.Duration(0); at < 2*time.Minute; at += batch {
		reports, err := stream.Push(res.Window(at, batch))
		if err != nil {
			log.Fatal(err)
		}
		show(reports)
	}
	reports, err := stream.Close()
	if err != nil {
		log.Fatal(err)
	}
	show(reports)
	fmt.Printf("\nlate drops (record-window assignments): %d\n", stream.Late())
}
