// Online monitoring: a streaming Monitor session consumes the collector's
// flow stream — the paper's continuous deployment mode. Records append
// into per-window columnar builders as they arrive, closed windows analyze
// in a pipeline while newer records keep ingesting, and the job registry
// plus incident tracker carry identity across windows: a GPU that starts
// thermal throttling mid-run shows up as one ongoing incident with a
// first-seen time, not an unrelated alert pile per window. With
// localization enabled, each window also carries a ranked list of suspect
// components — the switch, link or host NIC the alerts point at — with the
// same cross-window continuity, and a fused ranking that accumulates each
// suspect's score across windows, so one persistent root cause rises above
// per-window noise. Chronic suppression completes the incident-centric
// view: anomalies that fire from the session's first windows and never
// resolve are classified chronic — platform steady state, not events —
// and leave the alert surface while their incidents stay visible.
//
// The session also records itself: WithArchive persists every completed
// window's columnar frame into a binary trace archive, and the final step
// reopens that archive and replays it through a fresh monitor — no text
// codec, no re-sorting — verifying the replay reproduces the live reports
// bit for bit, the workflow an operator uses to re-diagnose a production
// incident offline.
//
// The last act kills the session mid-stream and resumes it: a checkpoint
// taken at a window boundary captures the monitor's continuity state —
// window grid position, job registry, incident tracker with its chronic
// classifications, fused suspect scores — and ResumeMonitor restores it
// into a fresh process. The feeder re-pushes every record from
// ResumeFrom on, and the resumed session's reports must match the
// uninterrupted run's bit for bit from that window to the end.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"reflect"
	"time"

	"github.com/llmprism/llmprism"
)

func main() {
	topoSpec := llmprism.TopologySpec{Nodes: 16, NodesPerLeaf: 8, Spines: 4}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 16, TargetStep: 2 * time.Second},
	}, 5)
	if err != nil {
		log.Fatal(err)
	}

	// GPU 3 of server 1 throttles to quarter speed from 1:00 to 1:40.
	topo, err := llmprism.NewTopology(topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	victim := topo.AddrOf(1, 3)
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name: "online-monitor",
		Topo: topoSpec,
		Jobs: jobs,
		Faults: llmprism.FaultSchedule{Faults: []llmprism.Fault{{
			Kind:   llmprism.FaultRankSlowdown,
			Addr:   victim,
			At:     time.Minute,
			Until:  100 * time.Second,
			Factor: 4,
		}}},
		Horizon: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d records; GPU %v throttles 4x during 1:00-1:40\n\n", len(res.Records), victim)

	// 40-second windows put the throttling onset mid-window, so the
	// cross-step detector sees healthy steps first and the slowdown stands
	// out against them. 5 seconds of allowed lateness absorb out-of-order
	// collector exports; two windows may analyze while newer records
	// stream in.
	var trace bytes.Buffer
	monitor, err := llmprism.NewMonitor(
		llmprism.New(llmprism.WithLocalization(llmprism.LocalizationConfig{})),
		res.Topo, 40*time.Second,
		llmprism.WithLateness(5*time.Second),
		llmprism.WithPipelineDepth(2),
		llmprism.WithArchive(&trace),
		llmprism.WithChronicSuppression(llmprism.IncidentConfig{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := monitor.Stream(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	show := func(reports []*llmprism.Report) {
		for _, report := range reports {
			alerts := report.Alerts()
			fmt.Printf("window %d [%s..%s): %d jobs, %d alerts\n",
				report.Window.Seq,
				report.Window.Start.Format(time.TimeOnly),
				report.Window.End.Format(time.TimeOnly),
				len(report.Jobs), len(alerts))
			for _, job := range report.Jobs {
				fmt.Printf("  job %d: %d GPUs\n", job.JobID, len(job.Cluster.Endpoints))
			}
			firing, resolved := 0, 0
			for _, inc := range report.Incidents {
				if inc.StillFiring {
					firing++
				} else {
					resolved++
				}
			}
			if len(report.Incidents) > 0 {
				fmt.Printf("  incidents: %d firing, %d resolved\n", firing, resolved)
			}
			shown := 0
			for _, inc := range report.Incidents {
				if shown == 3 {
					fmt.Printf("    … and %d more\n", len(report.Incidents)-shown)
					break
				}
				shown++
				if inc.StillFiring {
					state := "firing"
					if inc.Chronic {
						state = "chronic, firing"
					}
					fmt.Printf("    %v %s %d windows since %s: %s\n",
						inc.Key.Kind, state, inc.Windows, inc.FirstSeen.Format(time.TimeOnly), inc.Detail)
				} else {
					fmt.Printf("    %v resolved after %d windows\n", inc.Key.Kind, inc.Windows)
				}
			}
			for i, s := range report.Suspects {
				if i == 2 {
					break
				}
				fmt.Printf("    suspect #%d %v: score %.2f, suspect for %d windows\n",
					i+1, s.Component, s.Score, s.Windows)
			}
			for i, s := range report.FusedSuspects {
				if i == 2 {
					break
				}
				fmt.Printf("    fused #%d %v: fused %.2f over %d windows\n",
					i+1, s.Component, s.Fused, s.Windows)
			}
		}
	}

	// Replay the trace in 5-second batches, as a collector would export
	// it. Push never waits for window analysis beyond the pipeline depth;
	// each batch returns whatever reports became ready, in window order.
	const batch = 5 * time.Second
	var live []*llmprism.Report
	for at := time.Duration(0); at < 2*time.Minute; at += batch {
		reports, err := stream.Push(res.Window(at, batch))
		if err != nil {
			log.Fatal(err)
		}
		show(reports)
		live = append(live, reports...)
	}
	reports, err := stream.Close()
	if err != nil {
		log.Fatal(err)
	}
	show(reports)
	live = append(live, reports...)
	fmt.Printf("\nlate drops (record-window assignments): %d\n", stream.Late())

	// The session archived itself window by window; reopen the binary
	// trace and replay it through a fresh monitor on the recorded grid.
	// Offline re-diagnosis must reproduce the live reports exactly.
	ar, err := llmprism.OpenTraceArchive(bytes.NewReader(trace.Bytes()), int64(trace.Len()))
	if err != nil {
		log.Fatal(err)
	}
	// Same analyzer and monitor settings as the live session (localization
	// and suppression included), or the replayed reports could not be
	// bit-identical.
	replayMon, err := llmprism.NewMonitor(
		llmprism.New(llmprism.WithLocalization(llmprism.LocalizationConfig{})),
		res.Topo, ar.Meta().Width,
		llmprism.WithLateness(ar.Meta().Lateness),
		llmprism.WithPipelineDepth(2),
		llmprism.WithAnchor(ar.Anchor()),
		llmprism.WithChronicSuppression(llmprism.IncidentConfig{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := replayMon.Stream(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	var replayed []*llmprism.Report
	if err := ar.Replay(func(_ llmprism.TraceArchiveSegment, f *llmprism.FlowFrame) error {
		reports, err := replay.PushFrame(f)
		replayed = append(replayed, reports...)
		return err
	}); err != nil {
		log.Fatal(err)
	}
	if reports, err = replay.Close(); err != nil {
		log.Fatal(err)
	}
	replayed = append(replayed, reports...)
	if !reflect.DeepEqual(live, replayed) {
		log.Fatal("replay diverged from the live session")
	}
	fmt.Printf("archived %d windows (%d bytes); replay reproduced all reports bit-for-bit\n",
		ar.NumSegments(), trace.Len())

	// Kill and resume: replay the trace once more on a finer 15-second
	// grid — eight windows, so reports release while records still stream —
	// checkpoint once two windows are out, and abandon the stream there:
	// the crash. A fresh monitor restores the checkpoint, the feeder
	// re-pushes every record from ResumeFrom on, and the combined reports
	// must match an uninterrupted run of the same session exactly.
	const resumeWindow = 15 * time.Second
	newSession := func() (*llmprism.MonitorStream, error) {
		m, err := llmprism.NewMonitor(
			llmprism.New(llmprism.WithLocalization(llmprism.LocalizationConfig{})),
			res.Topo, resumeWindow,
			llmprism.WithLateness(5*time.Second),
			llmprism.WithPipelineDepth(2),
			llmprism.WithChronicSuppression(llmprism.IncidentConfig{}),
		)
		if err != nil {
			return nil, err
		}
		return m.Stream(context.Background())
	}

	// The uninterrupted reference on the resume grid.
	ref, err := newSession()
	if err != nil {
		log.Fatal(err)
	}
	var want []*llmprism.Report
	for at := time.Duration(0); at < 2*time.Minute; at += batch {
		reports, err := ref.Push(res.Window(at, batch))
		if err != nil {
			log.Fatal(err)
		}
		want = append(want, reports...)
	}
	if reports, err = ref.Close(); err != nil {
		log.Fatal(err)
	}
	want = append(want, reports...)

	crashed, err := newSession()
	if err != nil {
		log.Fatal(err)
	}
	var checkpoint bytes.Buffer
	var head []*llmprism.Report
	for at := time.Duration(0); at < 2*time.Minute; at += batch {
		reports, err := crashed.Push(res.Window(at, batch))
		if err != nil {
			log.Fatal(err)
		}
		head = append(head, reports...)
		if len(head) >= 2 {
			if err := crashed.Checkpoint(&checkpoint); err != nil {
				log.Fatal(err)
			}
			break // the "crash": the session is never closed
		}
	}
	resumed, err := llmprism.ResumeMonitor(
		llmprism.New(llmprism.WithLocalization(llmprism.LocalizationConfig{})),
		res.Topo, &checkpoint,
		llmprism.WithPipelineDepth(2),
		llmprism.WithChronicSuppression(llmprism.IncidentConfig{}),
	)
	if err != nil {
		log.Fatal(err)
	}
	from := resumed.ResumeFrom()
	fmt.Printf("\nsession killed after %d windows; resuming from %s\n", len(head), from.Format(time.TimeOnly))
	resumeStream, err := resumed.Stream(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	tail := head
	for at := time.Duration(0); at < 2*time.Minute; at += batch {
		var replayRecs []llmprism.FlowRecord
		for _, rec := range res.Window(at, batch) {
			if !rec.Start.Before(from) {
				replayRecs = append(replayRecs, rec)
			}
		}
		reports, err := resumeStream.Push(replayRecs)
		if err != nil {
			log.Fatal(err)
		}
		tail = append(tail, reports...)
	}
	if reports, err = resumeStream.Close(); err != nil {
		log.Fatal(err)
	}
	tail = append(tail, reports...)
	if !reflect.DeepEqual(want, tail) {
		log.Fatal("resumed session diverged from the uninterrupted run")
	}
	fmt.Printf("resumed session reproduced windows %d..%d bit-for-bit\n",
		len(head), len(tail)-1)
}
