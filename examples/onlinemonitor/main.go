// Online monitoring: the Monitor consumes the collector's flow stream in
// consecutive windows — the paper's continuous deployment mode. A GPU
// starts thermal throttling mid-run; the cross-step detector raises alerts
// in the window where it happens.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/llmprism/llmprism"
)

func main() {
	topoSpec := llmprism.TopologySpec{Nodes: 16, NodesPerLeaf: 8, Spines: 4}
	jobs, err := llmprism.PlanJobs(topoSpec, []llmprism.JobPlan{
		{Nodes: 16, TargetStep: 2 * time.Second},
	}, 5)
	if err != nil {
		log.Fatal(err)
	}

	// GPU 3 of server 1 throttles to quarter speed from 1:00 to 1:40.
	topo, err := llmprism.NewTopology(topoSpec)
	if err != nil {
		log.Fatal(err)
	}
	victim := topo.AddrOf(1, 3)
	res, err := llmprism.Simulate(llmprism.Scenario{
		Name: "online-monitor",
		Topo: topoSpec,
		Jobs: jobs,
		Faults: llmprism.FaultSchedule{Faults: []llmprism.Fault{{
			Kind:   llmprism.FaultRankSlowdown,
			Addr:   victim,
			At:     time.Minute,
			Until:  100 * time.Second,
			Factor: 4,
		}}},
		Horizon: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d records; GPU %v throttles 4x during 1:00-1:40\n\n", len(res.Records), victim)

	// 40-second windows put the throttling onset mid-window, so the
	// cross-step detector sees healthy steps first and the slowdown
	// stands out against them.
	monitor, err := llmprism.NewMonitor(llmprism.New(), res.Topo, 40*time.Second)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the trace in 5-second batches, as a collector would export it.
	const batch = 5 * time.Second
	window := 0
	for at := time.Duration(0); at < 2*time.Minute; at += batch {
		reports, err := monitor.Feed(res.Window(at, batch))
		if err != nil {
			log.Fatal(err)
		}
		for _, report := range reports {
			window++
			alerts := report.Alerts()
			fmt.Printf("window %d: %d jobs, %d alerts\n", window, len(report.Jobs), len(alerts))
			if len(alerts) > 0 {
				fmt.Print(llmprism.RenderAlerts(alerts))
			}
		}
	}
	if report, err := monitor.Flush(); err != nil {
		log.Fatal(err)
	} else if report != nil {
		window++
		fmt.Printf("window %d (flush): %d alerts\n", window, len(report.Alerts()))
	}
}
